/**
 * @file
 * Internals shared by the scalar affine engines (affine.cc) and the
 * inter-sequence interleaved batch engine (affine_simd.cc): the
 * traceback byte layout, the engine-facing result struct and the
 * traceback walker. The walker is templated on a cell accessor so the
 * scalar engines hand it a flat (m+1)x(n+1) matrix while the batch
 * engine hands it one lane of a lane-major matrix — the bytes it reads
 * are identical either way, which is what keeps the batch results
 * bit-identical to the oracles.
 *
 * Not installed as public API; include only from align/*.cc.
 */

#ifndef GPX_ALIGN_AFFINE_INTERNAL_HH
#define GPX_ALIGN_AFFINE_INTERNAL_HH

#include <limits>
#include <utility>

#include "genomics/cigar.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace gpx {
namespace align {
namespace affine_detail {

constexpr i32 kNegInf = std::numeric_limits<i32>::min() / 4;

/** Alignment boundary conditions. */
enum class Mode { Global, Fit, Local };

/** Traceback byte layout. */
constexpr u8 kSrcMask = 0x07;
constexpr u8 kSrcDiag = 0;
constexpr u8 kSrcE1 = 1;
constexpr u8 kSrcE2 = 2;
constexpr u8 kSrcF1 = 3;
constexpr u8 kSrcF2 = 4;
constexpr u8 kSrcStart = 5;
constexpr u8 kExtE1 = 0x08;
constexpr u8 kExtE2 = 0x10;
constexpr u8 kExtF1 = 0x20;
constexpr u8 kExtF2 = 0x40;

struct EngineResult
{
    bool valid = false;
    i32 score = 0;
    genomics::Cigar cigar;
    u64 queryStart = 0;
    u64 targetStart = 0;
    u64 targetEnd = 0;
    u64 cellUpdates = 0;
};

/**
 * Reconstruct the optimal path from the traceback matrix, shared by
 * every engine (their matrices are bit-identical; only the fill loop
 * and the matrix memory layout differ). @p tbAt maps (i, j) to the
 * traceback byte of that cell.
 */
template <typename TbAt>
void
tracebackPath(EngineResult &out, TbAt &&tbAt, Mode mode, i32 best,
              std::size_t bestI, std::size_t bestJ)
{
    genomics::Cigar rev;
    std::size_t i = bestI, j = bestJ;
    u8 state = 0; // 0 = H, 1 = E1, 2 = E2, 3 = F1, 4 = F2
    bool hitStart = false;
    while (!hitStart) {
        if (state == 0) {
            u8 cell = tbAt(i, j);
            switch (cell & kSrcMask) {
              case kSrcStart:
                hitStart = true;
                break;
              case kSrcDiag:
                rev.push(genomics::CigarOp::Match, 1);
                --i;
                --j;
                if (i == 0 && j == 0 && mode != Mode::Fit)
                    hitStart = true;
                if (mode == Mode::Fit && i == 0)
                    hitStart = true;
                if (mode == Mode::Local && (tbAt(i, j) & kSrcMask) ==
                        kSrcStart && i == 0)
                    hitStart = true;
                break;
              case kSrcE1: state = 1; break;
              case kSrcE2: state = 2; break;
              case kSrcF1: state = 3; break;
              case kSrcF2: state = 4; break;
            }
            if (mode == Mode::Fit && state == 0 && !hitStart && i == 0)
                hitStart = true;
        } else if (state == 1 || state == 2) {
            u8 cell = tbAt(i, j);
            rev.push(genomics::CigarOp::Deletion, 1);
            bool ext = cell & (state == 1 ? kExtE1 : kExtE2);
            --j;
            if (!ext)
                state = 0;
            if (j == 0 && state != 0)
                gpx_panic("affine traceback escaped matrix (E)");
        } else {
            u8 cell = tbAt(i, j);
            rev.push(genomics::CigarOp::Insertion, 1);
            bool ext = cell & (state == 3 ? kExtF1 : kExtF2);
            --i;
            if (!ext)
                state = 0;
            if (i == 0 && state != 0)
                gpx_panic("affine traceback escaped matrix (F)");
            if (mode == Mode::Fit && state == 0 && i == 0)
                hitStart = true;
        }
        if (mode == Mode::Global && i == 0 && j == 0)
            hitStart = true;
    }

    // Reverse the CIGAR.
    genomics::Cigar cigar;
    const auto &elems = rev.elems();
    for (auto it = elems.rbegin(); it != elems.rend(); ++it)
        cigar.push(it->op, it->len);

    out.valid = true;
    out.score = best;
    out.cigar = std::move(cigar);
    out.queryStart = i;
    out.targetStart = j;
    out.targetEnd = bestJ;
}

} // namespace affine_detail
} // namespace align
} // namespace gpx

#endif // GPX_ALIGN_AFFINE_INTERNAL_HH
