/**
 * @file
 * Bit-parallel Shifted Hamming Distance (SHD) primitives.
 *
 * The Light Alignment step (paper §4.6) compares a read against 2e+1
 * shifted copies of the reference window and reasons about the longest
 * all-ones prefix/suffix of each Hamming mask. The hardware computes all
 * masks in one cycle with vectorized XOR (§5.4); in software each mask is
 * three 64-bit words for a 150 bp read.
 */

#ifndef GPX_ALIGN_SHD_HH
#define GPX_ALIGN_SHD_HH

#include <vector>

#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace align {

/** One Hamming mask: bit i set iff read base i equals the shifted ref. */
struct HammingMask
{
    std::vector<u64> words;
    u32 bits = 0;

    /** Number of 1-bits (matching positions). */
    u32 popcount() const;

    /** Length of the run of 1s starting at bit 0. */
    u32 onesPrefix() const;

    /** Length of the run of 1s ending at bit bits-1. */
    u32 onesSuffix() const;

    /** Value of bit i. */
    bool test(u32 i) const;
};

/**
 * Precomputed bit-planes of a sequence, enabling O(words) equality-mask
 * construction against another plane set at an arbitrary offset.
 */
class BitPlanes
{
  public:
    BitPlanes() = default;
    explicit BitPlanes(const genomics::DnaView &seq);

    /**
     * Rebuild the planes over @p seq, reusing the word storage. The
     * batched light-alignment stage re-plans one window per candidate;
     * this keeps that loop allocation-free once warm.
     */
    void assign(const genomics::DnaView &seq);

    u32 bits() const { return bits_; }

    /**
     * Equality mask of this sequence (read) against @p ref starting at
     * @p ref_offset: mask bit i = (this[i] == ref[ref_offset + i]).
     * Positions where the ref window runs out are 0 (mismatch).
     */
    HammingMask equalityMask(const BitPlanes &ref, u32 ref_offset) const;

    /** equalityMask() writing into @p out, reusing its word storage. */
    void equalityMaskInto(const BitPlanes &ref, u32 ref_offset,
                          HammingMask &out) const;

  private:
    std::vector<u64> lo_;
    std::vector<u64> hi_;
    u32 bits_ = 0;
};

/**
 * Compute the 2e+1 Hamming masks of @p read against @p window, where the
 * read's nominal start is at @p center within the window. masks[e + s]
 * compares read[i] with window[center + i + s] for shifts s in [-e, +e].
 */
std::vector<HammingMask> shiftedMasks(const genomics::DnaView &read,
                                      const genomics::DnaView &window,
                                      u32 center, u32 e);

/**
 * shiftedMasks() over prebuilt planes, writing into @p out (resized to
 * 2e+1; per-mask word storage is reused). The scratch-based form the
 * batched LightAlignStage uses: the read's planes are computed once per
 * pair side and shared across every candidate of that pair.
 */
void shiftedMasksInto(const BitPlanes &read_planes,
                      const BitPlanes &window_planes, u32 center, u32 e,
                      std::vector<HammingMask> &out);

} // namespace align
} // namespace gpx

#endif // GPX_ALIGN_SHD_HH
