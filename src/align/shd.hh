/**
 * @file
 * Bit-parallel Shifted Hamming Distance (SHD) primitives.
 *
 * The Light Alignment step (paper §4.6) compares a read against 2e+1
 * shifted copies of the reference window and reasons about the longest
 * all-ones prefix/suffix of each Hamming mask. The hardware computes all
 * masks in one cycle with vectorized XOR (§5.4); in software each mask is
 * three 64-bit words for a 150 bp read.
 */

#ifndef GPX_ALIGN_SHD_HH
#define GPX_ALIGN_SHD_HH

#include <vector>

#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace align {

/** One Hamming mask: bit i set iff read base i equals the shifted ref. */
struct HammingMask
{
    std::vector<u64> words;
    u32 bits = 0;

    /** Number of 1-bits (matching positions). */
    u32 popcount() const;

    /** Length of the run of 1s starting at bit 0. */
    u32 onesPrefix() const;

    /** Length of the run of 1s ending at bit bits-1. */
    u32 onesSuffix() const;

    /** Value of bit i. */
    bool test(u32 i) const;
};

/**
 * Precomputed bit-planes of a sequence, enabling O(words) equality-mask
 * construction against another plane set at an arbitrary offset.
 */
class BitPlanes
{
  public:
    BitPlanes() = default;
    explicit BitPlanes(const genomics::DnaView &seq);

    /**
     * Rebuild the planes over @p seq, reusing the word storage. The
     * batched light-alignment stage re-plans one window per candidate;
     * this keeps that loop allocation-free once warm.
     */
    void assign(const genomics::DnaView &seq);

    u32 bits() const { return bits_; }

    /**
     * Equality mask of this sequence (read) against @p ref starting at
     * @p ref_offset: mask bit i = (this[i] == ref[ref_offset + i]).
     * Positions where the ref window runs out are 0 (mismatch).
     */
    HammingMask equalityMask(const BitPlanes &ref, u32 ref_offset) const;

    /** equalityMask() writing into @p out, reusing its word storage. */
    void equalityMaskInto(const BitPlanes &ref, u32 ref_offset,
                          HammingMask &out) const;

    /** Raw plane words (the batch kernels gather these lane-major). */
    const std::vector<u64> &lo() const { return lo_; }
    const std::vector<u64> &hi() const { return hi_; }

  private:
    std::vector<u64> lo_;
    std::vector<u64> hi_;
    u32 bits_ = 0;
};

/**
 * Compute the 2e+1 Hamming masks of @p read against @p window, where the
 * read's nominal start is at @p center within the window. masks[e + s]
 * compares read[i] with window[center + i + s] for shifts s in [-e, +e].
 */
std::vector<HammingMask> shiftedMasks(const genomics::DnaView &read,
                                      const genomics::DnaView &window,
                                      u32 center, u32 e);

/**
 * shiftedMasks() over prebuilt planes, writing into @p out (resized to
 * 2e+1; per-mask word storage is reused). The scratch-based form the
 * batched LightAlignStage uses: the read's planes are computed once per
 * pair side and shared across every candidate of that pair.
 */
void shiftedMasksInto(const BitPlanes &read_planes,
                      const BitPlanes &window_planes, u32 center, u32 e,
                      std::vector<HammingMask> &out);

/**
 * SIMD-across-batch shifted-mask statistics: the 2e+1 Hamming masks of
 * up to L (read, window) candidate lanes computed per vector register,
 * with per-(shift, lane) popcount and all-ones prefix/suffix lengths —
 * exactly the three statistics the Light Alignment hypothesis search
 * and the SHD-family filters consume.
 *
 * Usage: begin() fixes the lane geometry (uniform read length and
 * center; per-lane windows may differ in length), setLane() gathers
 * each lane's packed plane words into the lane-major staging buffers,
 * run() executes the kernel for the active util::SimdBackend. Every
 * output word is bit-identical to the corresponding scalar
 * shiftedMasksInto() mask (lanes never mix), pinned by
 * tests/test_simd.cc.
 *
 * Buffers are owned by the caller's scratch (LightAlignScratch embeds
 * one) and reused across runs; warm runs are allocation-free.
 */
struct ShdBatch
{
    u32 lanes = 0;     ///< lanes staged in this run
    u32 bits = 0;      ///< uniform read length n
    u32 center = 0;    ///< nominal read start inside each window
    u32 e = 0;         ///< max shift (2e+1 masks)
    u32 readWords = 0; ///< plane words per read lane
    u32 winWords = 0;  ///< staged (zero-padded) plane words per window lane

    // Lane-major staging: [word * lanes + lane].
    std::vector<u64> readLo, readHi;
    std::vector<u64> winLo, winHi;
    std::vector<u32> winBits; ///< per-lane window length

    // Lane-major results: masks [(shift * readWords + word) * lanes +
    // lane], statistics [shift * lanes + lane].
    std::vector<u64> maskWords;
    std::vector<u32> popcount;
    std::vector<u32> prefix;
    std::vector<u32> suffix;

    /** Reset geometry for a batch of @p lane_count candidate lanes. */
    void begin(u32 lane_count, u32 read_bits, u32 center_off,
               u32 max_shift);

    /** Gather one lane's plane words into the staging buffers. */
    void setLane(u32 lane, const BitPlanes &read_planes,
                 const BitPlanes &window_planes);

    /** Compute masks + statistics for every staged lane. */
    void run();

    u32 shifts() const { return 2 * e + 1; }

    u64
    maskWord(u32 shift, u32 w, u32 lane) const
    {
        return maskWords[(static_cast<std::size_t>(shift) * readWords + w) *
                             lanes +
                         lane];
    }
    u32 pop(u32 shift, u32 lane) const
    {
        return popcount[static_cast<std::size_t>(shift) * lanes + lane];
    }
    u32 pre(u32 shift, u32 lane) const
    {
        return prefix[static_cast<std::size_t>(shift) * lanes + lane];
    }
    u32 suf(u32 shift, u32 lane) const
    {
        return suffix[static_cast<std::size_t>(shift) * lanes + lane];
    }
};

} // namespace align
} // namespace gpx

#endif // GPX_ALIGN_SHD_HH
