#include "align/shd.hh"

#include <bit>

#include "util/logging.hh"

namespace gpx {
namespace align {

u32
HammingMask::popcount() const
{
    u32 n = 0;
    for (u64 w : words)
        n += static_cast<u32>(std::popcount(w));
    return n;
}

u32
HammingMask::onesPrefix() const
{
    u32 run = 0;
    for (std::size_t w = 0; w < words.size(); ++w) {
        u32 remaining = bits - static_cast<u32>(w * 64);
        u32 in_word = remaining < 64 ? remaining : 64;
        u64 v = words[w];
        if (in_word < 64)
            v |= ~u64{0} << in_word; // pad the tail with 1s, bounded below
        u32 ones = static_cast<u32>(std::countr_one(v));
        if (ones >= in_word) {
            run += in_word;
            continue;
        }
        run += ones;
        break;
    }
    return run < bits ? run : bits;
}

u32
HammingMask::onesSuffix() const
{
    u32 run = 0;
    for (std::size_t idx = words.size(); idx > 0; --idx) {
        std::size_t w = idx - 1;
        u32 base = static_cast<u32>(w * 64);
        u32 in_word = bits - base < 64 ? bits - base : 64;
        u64 v = words[w];
        // Shift the valid bits to the top of the word.
        v <<= (64 - in_word);
        u32 ones = static_cast<u32>(std::countl_one(v));
        if (ones >= in_word) {
            run += in_word;
            continue;
        }
        run += ones;
        break;
    }
    return run < bits ? run : bits;
}

bool
HammingMask::test(u32 i) const
{
    gpx_assert(i < bits, "mask bit out of range");
    return (words[i >> 6] >> (i & 63u)) & 1u;
}

BitPlanes::BitPlanes(const genomics::DnaView &seq)
    : bits_(static_cast<u32>(seq.size()))
{
    seq.bitPlanes(lo_, hi_);
}

void
BitPlanes::assign(const genomics::DnaView &seq)
{
    bits_ = static_cast<u32>(seq.size());
    seq.bitPlanes(lo_, hi_); // resize() inside reuses capacity
}

HammingMask
BitPlanes::equalityMask(const BitPlanes &ref, u32 ref_offset) const
{
    HammingMask mask;
    equalityMaskInto(ref, ref_offset, mask);
    return mask;
}

void
BitPlanes::equalityMaskInto(const BitPlanes &ref, u32 ref_offset,
                            HammingMask &mask) const
{
    mask.bits = bits_;
    std::size_t words = (bits_ + 63) / 64;
    mask.words.assign(words, 0);

    const u32 shift = ref_offset & 63u;
    const std::size_t word_off = ref_offset >> 6;

    for (std::size_t w = 0; w < words; ++w) {
        auto fetch = [&](const std::vector<u64> &planes) -> u64 {
            std::size_t i = w + word_off;
            u64 v = i < planes.size() ? planes[i] >> shift : 0;
            if (shift && i + 1 < planes.size())
                v |= planes[i + 1] << (64 - shift);
            return v;
        };
        u64 rlo = lo_[w];
        u64 rhi = hi_[w];
        u64 glo = fetch(ref.lo_);
        u64 ghi = fetch(ref.hi_);
        mask.words[w] = ~((rlo ^ glo) | (rhi ^ ghi));
    }

    // Clear bits beyond the read length and beyond the ref window.
    u32 valid = bits_;
    if (ref_offset > ref.bits_)
        valid = 0;
    else if (ref.bits_ - ref_offset < bits_)
        valid = ref.bits_ - ref_offset;
    for (std::size_t w = 0; w < words; ++w) {
        u32 base = static_cast<u32>(w * 64);
        if (base >= valid) {
            mask.words[w] = 0;
        } else if (valid - base < 64) {
            mask.words[w] &= (u64{1} << (valid - base)) - 1;
        }
    }
}

std::vector<HammingMask>
shiftedMasks(const genomics::DnaView &read,
             const genomics::DnaView &window, u32 center, u32 e)
{
    BitPlanes readPlanes(read);
    BitPlanes winPlanes(window);
    std::vector<HammingMask> masks;
    shiftedMasksInto(readPlanes, winPlanes, center, e, masks);
    return masks;
}

void
shiftedMasksInto(const BitPlanes &read_planes,
                 const BitPlanes &window_planes, u32 center, u32 e,
                 std::vector<HammingMask> &out)
{
    gpx_assert(center >= e, "window must extend e bases left of center");
    out.resize(2 * e + 1);
    for (i32 s = -static_cast<i32>(e); s <= static_cast<i32>(e); ++s) {
        u32 off = static_cast<u32>(static_cast<i32>(center) + s);
        read_planes.equalityMaskInto(window_planes, off,
                                     out[static_cast<std::size_t>(
                                         s + static_cast<i32>(e))]);
    }
}

} // namespace align
} // namespace gpx
