#include "align/affine.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "align/affine_internal.hh"
#include "util/logging.hh"

namespace gpx {
namespace align {

using genomics::Cigar;
using genomics::CigarOp;
using genomics::DnaView;
using genomics::ScoringScheme;

namespace {

using namespace affine_detail;

/**
 * The seed DP engine, kept verbatim as the oracle for the branchless
 * engine below: computes H/E1/E2/F1/F2 row by row with a full
 * traceback matrix, one heap-allocated working set per call and a
 * branchy inner loop.
 */
EngineResult
runReference(const DnaView &query, const DnaView &target,
             const ScoringScheme &sc, Mode mode, i32 band)
{
    const std::size_t m = query.size();
    const std::size_t n = target.size();
    EngineResult out;
    if (m == 0 || n == 0)
        return out;

    gpx_assert((m + 1) * (n + 1) <= (1ull << 27),
               "DP matrix too large; use banding or smaller windows");

    std::vector<u8> tb((m + 1) * (n + 1), 0);
    auto tbAt = [&](std::size_t i, std::size_t j) -> u8 & {
        return tb[i * (n + 1) + j];
    };

    // Decode both operands once (32 bases per word load) so the O(n*m)
    // inner loop compares plain bytes instead of re-extracting packed
    // 2-bit codes.
    std::vector<u8> qc(m), tc(n);
    query.decodeTo(qc.data());
    target.decodeTo(tc.data());

    std::vector<i32> hPrev(n + 1, kNegInf), hCur(n + 1, kNegInf);
    std::vector<i32> f1(n + 1, kNegInf), f2(n + 1, kNegInf);

    const i32 oe1 = sc.gapOpen1 + sc.gapExtend1;
    const i32 oe2 = sc.gapOpen2 + sc.gapExtend2;

    // Row 0.
    hPrev[0] = 0;
    tbAt(0, 0) = kSrcStart;
    for (std::size_t j = 1; j <= n; ++j) {
        if (mode == Mode::Global) {
            hPrev[j] = -sc.gapCost(static_cast<u32>(j));
            // Record which gap piece is cheaper so traceback extends it.
            bool piece1 = sc.gapOpen1 + static_cast<i32>(j) * sc.gapExtend1 <=
                          sc.gapOpen2 + static_cast<i32>(j) * sc.gapExtend2;
            u8 flags = piece1 ? kSrcE1 : kSrcE2;
            if (j > 1)
                flags |= piece1 ? kExtE1 : kExtE2;
            tbAt(0, j) = flags;
        } else {
            hPrev[j] = 0; // free target start
            tbAt(0, j) = kSrcStart;
        }
    }

    i32 best = kNegInf;
    std::size_t bestI = 0, bestJ = 0;

    for (std::size_t i = 1; i <= m; ++i) {
        i32 e1 = kNegInf, e2 = kNegInf;
        std::size_t jLo = 1, jHi = n;
        if (band >= 0) {
            i64 lo = static_cast<i64>(i) - band;
            i64 hi = static_cast<i64>(i) + band;
            jLo = static_cast<std::size_t>(std::max<i64>(1, lo));
            jHi = static_cast<std::size_t>(
                std::min<i64>(static_cast<i64>(n), hi));
        }
        std::fill(hCur.begin(), hCur.end(), kNegInf);

        // Column 0: query-only gap (insertion).
        if (mode == Mode::Local) {
            hCur[0] = 0;
            tbAt(i, 0) = kSrcStart;
        } else {
            hCur[0] = -sc.gapCost(static_cast<u32>(i));
            bool piece1 = sc.gapOpen1 + static_cast<i32>(i) * sc.gapExtend1 <=
                          sc.gapOpen2 + static_cast<i32>(i) * sc.gapExtend2;
            u8 flags = piece1 ? kSrcF1 : kSrcF2;
            if (i > 1)
                flags |= piece1 ? kExtF1 : kExtF2;
            tbAt(i, 0) = flags;
        }
        // Maintain F across the banded region; reset off-band columns.
        // (jLo can pass the row's end when the band excludes the whole
        // row — query much longer than target — so clamp: the seed
        // code wrote one past the buffer there, found by the oracle
        // fuzz test.)
        if (band >= 0 && jLo > 1 && jLo - 1 <= n) {
            f1[jLo - 1] = kNegInf;
            f2[jLo - 1] = kNegInf;
        }

        for (std::size_t j = jLo; j <= jHi; ++j) {
            ++out.cellUpdates;
            u8 flags = 0;

            // E: gap consuming target (deletion from the read's view).
            i32 e1Open = hCur[j - 1] - oe1;
            i32 e1Ext = e1 - sc.gapExtend1;
            if (e1Ext > e1Open) {
                e1 = e1Ext;
                flags |= kExtE1;
            } else {
                e1 = e1Open;
            }
            i32 e2Open = hCur[j - 1] - oe2;
            i32 e2Ext = e2 - sc.gapExtend2;
            if (e2Ext > e2Open) {
                e2 = e2Ext;
                flags |= kExtE2;
            } else {
                e2 = e2Open;
            }

            // F: gap consuming query (insertion).
            i32 f1Open = hPrev[j] - oe1;
            i32 f1Ext = f1[j] - sc.gapExtend1;
            if (f1Ext > f1Open) {
                f1[j] = f1Ext;
                flags |= kExtF1;
            } else {
                f1[j] = f1Open;
            }
            i32 f2Open = hPrev[j] - oe2;
            i32 f2Ext = f2[j] - sc.gapExtend2;
            if (f2Ext > f2Open) {
                f2[j] = f2Ext;
                flags |= kExtF2;
            } else {
                f2[j] = f2Open;
            }

            i32 sub = qc[i - 1] == tc[j - 1] ? sc.match : -sc.mismatch;
            i32 diag = hPrev[j - 1] == kNegInf ? kNegInf : hPrev[j - 1] + sub;

            i32 h = diag;
            u8 src = kSrcDiag;
            if (e1 > h) { h = e1; src = kSrcE1; }
            if (e2 > h) { h = e2; src = kSrcE2; }
            if (f1[j] > h) { h = f1[j]; src = kSrcF1; }
            if (f2[j] > h) { h = f2[j]; src = kSrcF2; }
            if (mode == Mode::Local && h < 0) {
                h = 0;
                src = kSrcStart;
            }
            hCur[j] = h;
            tbAt(i, j) = static_cast<u8>(flags | src);

            if (mode == Mode::Local && h > best) {
                best = h;
                bestI = i;
                bestJ = j;
            }
        }
        std::swap(hPrev, hCur);
    }

    // Pick the end cell.
    if (mode == Mode::Global) {
        best = hPrev[n];
        bestI = m;
        bestJ = n;
    } else if (mode == Mode::Fit) {
        best = kNegInf;
        bestI = m;
        for (std::size_t j = 0; j <= n; ++j) {
            if (hPrev[j] > best) {
                best = hPrev[j];
                bestJ = j;
            }
        }
    }
    if (best <= kNegInf / 2)
        return out; // band excluded every complete path

    tracebackPath(
        out,
        [&](std::size_t ti, std::size_t tj) { return tb[ti * (n + 1) + tj]; },
        mode, best, bestI, bestJ);
    return out;
}

/**
 * The production engine: identical recurrence, boundary handling and
 * traceback matrix as runReference() — the randomized oracle tests in
 * test_affine pin that — but the inner loop is branchless (every
 * min/max and flag is a conditional move; DNA comparisons are
 * unpredictable, so the reference's per-cell branches cost a
 * mispredict each) and the whole working set lives in a caller-owned
 * AlignScratch, so a driver's thousandth alignment allocates nothing.
 */
template <Mode mode>
EngineResult
runBranchless(const DnaView &query, const DnaView &target,
              const ScoringScheme &sc, i32 band, AlignScratch &scr)
{
    const std::size_t m = query.size();
    const std::size_t n = target.size();
    EngineResult out;
    if (m == 0 || n == 0)
        return out;

    gpx_assert((m + 1) * (n + 1) <= (1ull << 27),
               "DP matrix too large; use banding or smaller windows");

    scr.traceback.assign((m + 1) * (n + 1), 0);
    scr.queryCodes.resize(m);
    scr.targetCodes.resize(n);
    query.decodeTo(scr.queryCodes.data());
    target.decodeTo(scr.targetCodes.data());
    scr.hPrev.assign(n + 1, kNegInf);
    scr.hCur.assign(n + 1, kNegInf);
    scr.f1.assign(n + 1, kNegInf);
    scr.f2.assign(n + 1, kNegInf);

    const i32 oe1 = sc.gapOpen1 + sc.gapExtend1;
    const i32 oe2 = sc.gapOpen2 + sc.gapExtend2;
    const i32 ge1 = sc.gapExtend1;
    const i32 ge2 = sc.gapExtend2;
    const i32 match = sc.match;
    const i32 mismatch = sc.mismatch;

    u8 *tb = scr.traceback.data();

    // Row 0 (identical to the reference).
    scr.hPrev[0] = 0;
    tb[0] = kSrcStart;
    for (std::size_t j = 1; j <= n; ++j) {
        if (mode == Mode::Global) {
            scr.hPrev[j] = -sc.gapCost(static_cast<u32>(j));
            bool piece1 = sc.gapOpen1 + static_cast<i32>(j) * ge1 <=
                          sc.gapOpen2 + static_cast<i32>(j) * ge2;
            u8 flags = piece1 ? kSrcE1 : kSrcE2;
            if (j > 1)
                flags |= piece1 ? kExtE1 : kExtE2;
            tb[j] = flags;
        } else {
            scr.hPrev[j] = 0; // free target start
            tb[j] = kSrcStart;
        }
    }

    i32 best = kNegInf;
    std::size_t bestI = 0, bestJ = 0;

    const u8 *qc = scr.queryCodes.data();
    const u8 *tc = scr.targetCodes.data();

    for (std::size_t i = 1; i <= m; ++i) {
        i32 e1 = kNegInf, e2 = kNegInf;
        std::size_t jLo = 1, jHi = n;
        if (band >= 0) {
            i64 lo = static_cast<i64>(i) - band;
            i64 hi = static_cast<i64>(i) + band;
            jLo = static_cast<std::size_t>(std::max<i64>(1, lo));
            jHi = static_cast<std::size_t>(
                std::min<i64>(static_cast<i64>(n), hi));
        }
        std::fill(scr.hCur.begin(), scr.hCur.end(), kNegInf);

        u8 *tbRow = tb + i * (n + 1);

        // Column 0: query-only gap (insertion).
        if (mode == Mode::Local) {
            scr.hCur[0] = 0;
            tbRow[0] = kSrcStart;
        } else {
            scr.hCur[0] = -sc.gapCost(static_cast<u32>(i));
            bool piece1 = sc.gapOpen1 + static_cast<i32>(i) * ge1 <=
                          sc.gapOpen2 + static_cast<i32>(i) * ge2;
            u8 flags = piece1 ? kSrcF1 : kSrcF2;
            if (i > 1)
                flags |= piece1 ? kExtF1 : kExtF2;
            tbRow[0] = flags;
        }
        // Maintain F across the banded region; reset off-band columns
        // (clamped: see the matching comment in runReference()).
        if (band >= 0 && jLo > 1 && jLo - 1 <= n) {
            scr.f1[jLo - 1] = kNegInf;
            scr.f2[jLo - 1] = kNegInf;
        }

        const i32 *hp = scr.hPrev.data();
        i32 *hc = scr.hCur.data();
        i32 *f1 = scr.f1.data();
        i32 *f2 = scr.f2.data();
        const u8 qi = qc[i - 1];

        for (std::size_t j = jLo; j <= jHi; ++j) {
            // E: gap consuming target (deletion from the read's view).
            const i32 hLeft = hc[j - 1];
            const i32 e1Open = hLeft - oe1;
            const i32 e1Ext = e1 - ge1;
            const bool x1 = e1Ext > e1Open;
            e1 = x1 ? e1Ext : e1Open;
            const i32 e2Open = hLeft - oe2;
            const i32 e2Ext = e2 - ge2;
            const bool x2 = e2Ext > e2Open;
            e2 = x2 ? e2Ext : e2Open;

            // F: gap consuming query (insertion).
            const i32 hUp = hp[j];
            const i32 f1Open = hUp - oe1;
            const i32 f1Ext = f1[j] - ge1;
            const bool x3 = f1Ext > f1Open;
            const i32 f1v = x3 ? f1Ext : f1Open;
            f1[j] = f1v;
            const i32 f2Open = hUp - oe2;
            const i32 f2Ext = f2[j] - ge2;
            const bool x4 = f2Ext > f2Open;
            const i32 f2v = x4 ? f2Ext : f2Open;
            f2[j] = f2v;

            const i32 hDiag = hp[j - 1];
            const i32 sub = qi == tc[j - 1] ? match : -mismatch;
            const i32 diag = hDiag == kNegInf ? kNegInf : hDiag + sub;

            i32 h = diag;
            u8 src = kSrcDiag;
            src = e1 > h ? kSrcE1 : src;
            h = e1 > h ? e1 : h;
            src = e2 > h ? kSrcE2 : src;
            h = e2 > h ? e2 : h;
            src = f1v > h ? kSrcF1 : src;
            h = f1v > h ? f1v : h;
            src = f2v > h ? kSrcF2 : src;
            h = f2v > h ? f2v : h;
            if constexpr (mode == Mode::Local) {
                src = h < 0 ? kSrcStart : src;
                h = h < 0 ? 0 : h;
            }
            hc[j] = h;
            tbRow[j] = static_cast<u8>(
                src | (static_cast<u8>(x1) << 3) |
                (static_cast<u8>(x2) << 4) | (static_cast<u8>(x3) << 5) |
                (static_cast<u8>(x4) << 6));

            if constexpr (mode == Mode::Local) {
                if (h > best) {
                    best = h;
                    bestI = i;
                    bestJ = j;
                }
            }
        }
        if (jHi >= jLo)
            out.cellUpdates += jHi - jLo + 1;
        std::swap(scr.hPrev, scr.hCur);
    }

    // Pick the end cell.
    if (mode == Mode::Global) {
        best = scr.hPrev[n];
        bestI = m;
        bestJ = n;
    } else if (mode == Mode::Fit) {
        best = kNegInf;
        bestI = m;
        for (std::size_t j = 0; j <= n; ++j) {
            if (scr.hPrev[j] > best) {
                best = scr.hPrev[j];
                bestJ = j;
            }
        }
    }
    if (best <= kNegInf / 2)
        return out; // band excluded every complete path

    const u8 *tbc = scr.traceback.data();
    tracebackPath(
        out,
        [&](std::size_t ti, std::size_t tj) { return tbc[ti * (n + 1) + tj]; },
        mode, best, bestI, bestJ);
    return out;
}

} // namespace

AlignResult
fitAlign(const DnaView &query, const DnaView &target,
         const ScoringScheme &scheme, i32 band)
{
    AlignScratch scratch;
    return fitAlign(query, target, scheme, band, scratch);
}

AlignResult
fitAlign(const DnaView &query, const DnaView &target,
         const ScoringScheme &scheme, i32 band, AlignScratch &scratch)
{
    EngineResult r =
        runBranchless<Mode::Fit>(query, target, scheme, band, scratch);
    AlignResult out;
    out.valid = r.valid;
    out.score = r.score;
    out.cigar = std::move(r.cigar);
    out.targetStart = r.targetStart;
    out.targetEnd = r.targetEnd;
    out.cellUpdates = r.cellUpdates;
    return out;
}

AlignResult
fitAlignRef(const DnaView &query, const DnaView &target,
            const ScoringScheme &scheme, i32 band)
{
    EngineResult r = runReference(query, target, scheme, Mode::Fit, band);
    AlignResult out;
    out.valid = r.valid;
    out.score = r.score;
    out.cigar = std::move(r.cigar);
    out.targetStart = r.targetStart;
    out.targetEnd = r.targetEnd;
    out.cellUpdates = r.cellUpdates;
    return out;
}

AlignResult
globalAlign(const DnaView &query, const DnaView &target,
            const ScoringScheme &scheme, i32 band)
{
    AlignScratch scratch;
    EngineResult r = runBranchless<Mode::Global>(query, target, scheme,
                                                 band, scratch);
    AlignResult out;
    out.valid = r.valid;
    out.score = r.score;
    out.cigar = std::move(r.cigar);
    out.targetStart = r.targetStart;
    out.targetEnd = r.targetEnd;
    out.cellUpdates = r.cellUpdates;
    return out;
}

LocalResult
localAlign(const DnaView &query, const DnaView &target,
           const ScoringScheme &scheme)
{
    AlignScratch scratch;
    EngineResult r =
        runBranchless<Mode::Local>(query, target, scheme, -1, scratch);
    LocalResult out;
    out.valid = r.valid;
    out.score = r.score;
    out.cigar = std::move(r.cigar);
    out.queryStart = r.queryStart;
    out.targetStart = r.targetStart;
    out.cellUpdates = r.cellUpdates;
    return out;
}

} // namespace align
} // namespace gpx
