/**
 * @file
 * Anchor chaining by dynamic programming.
 *
 * The seeding stage of the baseline mapper produces anchors (query
 * position, reference position, length); chaining merges colinear anchors
 * into candidate alignment regions. This is the DP stage that dominates
 * paired-end Minimap2 runtime (paper §3.1: >65% of execution time), and
 * the stage GenPair's Paired-Adjacency Filtering replaces.
 */

#ifndef GPX_ALIGN_CHAIN_HH
#define GPX_ALIGN_CHAIN_HH

#include <vector>

#include "util/types.hh"

namespace gpx {
namespace align {

/** An exact seed match between read and reference. */
struct Anchor
{
    u64 queryPos = 0;
    GlobalPos refPos = 0;
    u32 length = 0;
    bool reverse = false; ///< anchor found on the reverse-complement read
};

/** Chaining parameters (simplified Minimap2 model). */
struct ChainParams
{
    u32 maxGap = 500;       ///< maximum query/ref gap between anchors
    u32 maxSkew = 100;      ///< maximum |query gap - ref gap|
    double gapScale = 0.3;  ///< per-base penalty on the diagonal skew
    double distScale = 0.01;///< per-base penalty on the gap length
    i32 minScore = 40;      ///< discard chains below this score
    u32 maxChains = 8;      ///< keep at most this many chains per read
};

/** One chained candidate region. */
struct Chain
{
    std::vector<u32> anchorIdx; ///< indices into the input anchor vector
    double score = 0;
    GlobalPos refStart = 0;
    GlobalPos refEnd = 0;
    u64 queryStart = 0;
    u64 queryEnd = 0;
    bool reverse = false;
    /** DP cell updates consumed by the chaining pass (MCUPS accounting). */
    u64 cellUpdates = 0;
};

/**
 * Chain anchors of one strand with O(n^2)-bounded DP (bounded lookback,
 * as in Minimap2).
 *
 * @param anchors Anchors, all with the same `reverse` flag.
 * @param params Chaining parameters.
 * @param lookback Maximum number of predecessors examined per anchor.
 */
std::vector<Chain> chainAnchors(const std::vector<Anchor> &anchors,
                                const ChainParams &params,
                                u32 lookback = 32);

} // namespace align
} // namespace gpx

#endif // GPX_ALIGN_CHAIN_HH
