#include "align/chain.hh"

#include <algorithm>
#include <cmath>

namespace gpx {
namespace align {

std::vector<Chain>
chainAnchors(const std::vector<Anchor> &anchors, const ChainParams &params,
             u32 lookback)
{
    std::vector<Chain> out;
    if (anchors.empty())
        return out;

    // Sort anchors by reference, then query position.
    std::vector<u32> order(anchors.size());
    for (u32 i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
        if (anchors[a].refPos != anchors[b].refPos)
            return anchors[a].refPos < anchors[b].refPos;
        return anchors[a].queryPos < anchors[b].queryPos;
    });

    const std::size_t n = order.size();
    std::vector<double> f(n);
    std::vector<i32> pred(n, -1);
    u64 cells = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const Anchor &ai = anchors[order[i]];
        f[i] = ai.length;
        std::size_t lo = i > lookback ? i - lookback : 0;
        for (std::size_t j = lo; j < i; ++j) {
            ++cells;
            const Anchor &aj = anchors[order[j]];
            if (aj.refPos + aj.length > ai.refPos)
                continue; // overlapping on the reference
            if (aj.queryPos + aj.length > ai.queryPos)
                continue; // overlapping / out of order on the query
            u64 dr = ai.refPos - (aj.refPos + aj.length);
            u64 dq = ai.queryPos - (aj.queryPos + aj.length);
            if (dr > params.maxGap || dq > params.maxGap)
                continue;
            u64 skew = dr > dq ? dr - dq : dq - dr;
            if (skew > params.maxSkew)
                continue;
            double gain = ai.length - params.gapScale * skew -
                          params.distScale * static_cast<double>(dq + dr) / 2;
            if (f[j] + gain > f[i]) {
                f[i] = f[j] + gain;
                pred[i] = static_cast<i32>(j);
            }
        }
    }

    // Extract chains greedily from the best unused tail anchors.
    std::vector<bool> used(n, false);
    std::vector<std::size_t> tails(n);
    for (std::size_t i = 0; i < n; ++i)
        tails[i] = i;
    std::sort(tails.begin(), tails.end(),
              [&](std::size_t a, std::size_t b) { return f[a] > f[b]; });

    for (std::size_t t : tails) {
        if (out.size() >= params.maxChains)
            break;
        if (used[t] || f[t] < params.minScore)
            continue;
        Chain chain;
        chain.score = f[t];
        i64 cur = static_cast<i64>(t);
        bool overlap = false;
        std::vector<u32> rev_idx;
        while (cur >= 0) {
            if (used[static_cast<std::size_t>(cur)]) {
                overlap = true;
                break;
            }
            rev_idx.push_back(order[static_cast<std::size_t>(cur)]);
            cur = pred[static_cast<std::size_t>(cur)];
        }
        if (overlap || rev_idx.empty())
            continue;
        // Mark members used only for complete, kept chains.
        std::size_t walk = t;
        while (true) {
            used[walk] = true;
            if (pred[walk] < 0)
                break;
            walk = static_cast<std::size_t>(pred[walk]);
        }
        std::reverse(rev_idx.begin(), rev_idx.end());
        const Anchor &head = anchors[rev_idx.front()];
        const Anchor &tail = anchors[rev_idx.back()];
        chain.anchorIdx = std::move(rev_idx);
        chain.refStart = head.refPos;
        chain.refEnd = tail.refPos + tail.length;
        chain.queryStart = head.queryPos;
        chain.queryEnd = tail.queryPos + tail.length;
        chain.reverse = head.reverse;
        out.push_back(std::move(chain));
    }

    if (!out.empty())
        out.front().cellUpdates = cells;
    return out;
}

} // namespace align
} // namespace gpx
