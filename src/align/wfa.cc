#include "align/wfa.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/logging.hh"

namespace gpx {
namespace align {

namespace {

using genomics::CigarOp;

/** Unreachable-offset sentinel (any arithmetic keeps it far negative). */
constexpr i64 kNone = std::numeric_limits<i64>::min() / 4;

/** One score level: the three component wavefronts over [lo, hi]. */
struct Wavefront
{
    i64 lo = 0;
    i64 hi = -1; ///< empty when hi < lo
    std::vector<i64> m, i, d;

    bool
    inRange(i64 k) const
    {
        return k >= lo && k <= hi;
    }

    i64
    get(const std::vector<i64> &comp, i64 k) const
    {
        return inRange(k) ? comp[static_cast<std::size_t>(k - lo)] : kNone;
    }

    i64 mAt(i64 k) const { return get(m, k); }
    i64 iAt(i64 k) const { return get(i, k); }
    i64 dAt(i64 k) const { return get(d, k); }

    void
    set(std::vector<i64> &comp, i64 k, i64 value)
    {
        comp[static_cast<std::size_t>(k - lo)] = value;
    }
};

/** The full score-indexed wavefront history (kept for traceback). */
class WavefrontTable
{
  public:
    WavefrontTable(const genomics::DnaSequence &q,
                   const genomics::DnaSequence &t, const WfaPenalties &p)
        : q_(q), t_(t), p_(p), n_(static_cast<i64>(t.size())),
          m_(static_cast<i64>(q.size()))
    {
    }

    /** Offset validity: h within text, v = h - k within query. */
    bool
    cellValid(i64 h, i64 k) const
    {
        const i64 v = h - k;
        return h >= 0 && h <= n_ && v >= 0 && v <= m_;
    }

    /** Greedy match extension of an M offset along diagonal k. */
    i64
    extend(i64 h, i64 k) const
    {
        if (h == kNone)
            return kNone;
        i64 v = h - k;
        while (h < n_ && v < m_ &&
               q_.at(static_cast<std::size_t>(v)) ==
                   t_.at(static_cast<std::size_t>(h))) {
            ++h;
            ++v;
        }
        return h;
    }

    const Wavefront &
    at(u32 s) const
    {
        return fronts_[s];
    }

    /** Compute wavefront s (0 = seed). Returns wavefront ops spent. */
    u64
    compute(u32 s)
    {
        fronts_.resize(s + 1);
        Wavefront &wf = fronts_[s];
        if (s == 0) {
            wf.lo = 0;
            wf.hi = 0;
            wf.m = { extend(0, 0) };
            wf.i = { kNone };
            wf.d = { kNone };
            return 1;
        }

        const Wavefront *mm = prev(s, p_.mismatch);
        const Wavefront *open = prev(s, p_.gapOpen + p_.gapExtend);
        const Wavefront *ext = prev(s, p_.gapExtend);

        i64 lo = 1, hi = -1; // empty unless a predecessor exists
        auto widen = [&](const Wavefront *w, i64 dlo, i64 dhi) {
            if (!w || w->hi < w->lo)
                return;
            if (hi < lo) {
                lo = w->lo + dlo;
                hi = w->hi + dhi;
            } else {
                lo = std::min(lo, w->lo + dlo);
                hi = std::max(hi, w->hi + dhi);
            }
        };
        widen(mm, 0, 0);
        widen(open, -1, +1);
        widen(ext, -1, +1);
        if (hi < lo)
            return 0; // no predecessor contributes at this score
        lo = std::max(lo, -m_);
        hi = std::min(hi, n_);
        if (hi < lo)
            return 0;

        wf.lo = lo;
        wf.hi = hi;
        const std::size_t width = static_cast<std::size_t>(hi - lo + 1);
        wf.m.assign(width, kNone);
        wf.i.assign(width, kNone);
        wf.d.assign(width, kNone);

        for (i64 k = lo; k <= hi; ++k) {
            // Insertion in the text direction (SAM deletion): h advances.
            i64 ins = std::max(open ? open->mAt(k - 1) : kNone,
                               ext ? ext->iAt(k - 1) : kNone);
            if (ins != kNone) {
                ins += 1;
                if (cellValid(ins, k))
                    wf.set(wf.i, k, ins);
            }
            // Query-consuming gap (SAM insertion): v advances, h stays.
            i64 del = std::max(open ? open->mAt(k + 1) : kNone,
                               ext ? ext->dAt(k + 1) : kNone);
            if (del != kNone && cellValid(del, k))
                wf.set(wf.d, k, del);
            // Mismatch or gap end, then greedy extension.
            i64 sub = mm ? mm->mAt(k) : kNone;
            if (sub != kNone) {
                sub += 1;
                if (!cellValid(sub, k))
                    sub = kNone;
            }
            i64 best =
                std::max({ sub, wf.get(wf.i, k), wf.get(wf.d, k) });
            if (best != kNone)
                wf.set(wf.m, k, extend(best, k));
        }
        return 3 * width;
    }

    /** Wavefront at score s - cost, or nullptr when underflowed. */
    const Wavefront *
    prev(u32 s, u32 cost) const
    {
        if (cost > s)
            return nullptr;
        return &fronts_[s - cost];
    }

  private:
    const genomics::DnaSequence &q_;
    const genomics::DnaSequence &t_;
    WfaPenalties p_;
    i64 n_, m_;
    std::vector<Wavefront> fronts_;
};

/** Trace the optimal path back through the wavefront history. */
genomics::Cigar
traceback(const WavefrontTable &table, const WfaPenalties &p, u32 s_final,
          i64 n, i64 m)
{
    // Ops are collected end-to-start then reversed.
    std::vector<genomics::CigarElem> rev;
    auto emit = [&](CigarOp op, u32 len) {
        if (len == 0)
            return;
        if (!rev.empty() && rev.back().op == op)
            rev.back().len += len;
        else
            rev.push_back({ op, len });
    };

    enum class Comp { M, I, D };
    Comp comp = Comp::M;
    u32 s = s_final;
    i64 k = n - m;
    i64 h = n;

    while (true) {
        const Wavefront &wf = table.at(s);
        if (comp == Comp::M) {
            // Matches gained by extension from the pre-extension offset.
            const Wavefront *mm = table.prev(s, p.mismatch);
            i64 sub = mm ? mm->mAt(k) : kNone;
            if (sub != kNone) {
                sub += 1;
                if (!table.cellValid(sub, k))
                    sub = kNone;
            }
            i64 preExt = std::max({ sub, wf.iAt(k), wf.dAt(k) });
            if (s == 0) {
                // Seed wavefront: everything left is matches down to 0.
                gpx_assert(k == 0,
                           "WFA traceback ended off the seed diagonal");
                emit(CigarOp::Match, static_cast<u32>(h));
                break;
            }
            gpx_assert(preExt != kNone, "WFA traceback lost the M path");
            emit(CigarOp::Match, static_cast<u32>(h - preExt));
            h = preExt;
            if (wf.iAt(k) == h) {
                comp = Comp::I;
            } else if (wf.dAt(k) == h) {
                comp = Comp::D;
            } else {
                // Mismatch step (reported as M, matching SamWriter).
                emit(CigarOp::Match, 1);
                s -= p.mismatch;
                h -= 1;
            }
        } else if (comp == Comp::I) {
            // Text-consuming gap: SAM deletion, h steps back by one.
            const Wavefront *open = table.prev(s, p.gapOpen + p.gapExtend);
            const Wavefront *ext = table.prev(s, p.gapExtend);
            emit(CigarOp::Deletion, 1);
            if (ext && ext->iAt(k - 1) == h - 1) {
                s -= p.gapExtend;
                comp = Comp::I;
            } else {
                gpx_assert(open && open->mAt(k - 1) == h - 1,
                           "WFA traceback lost the I path");
                s -= p.gapOpen + p.gapExtend;
                comp = Comp::M;
            }
            h -= 1;
            k -= 1;
        } else {
            // Query-consuming gap: SAM insertion, offset unchanged.
            const Wavefront *open = table.prev(s, p.gapOpen + p.gapExtend);
            const Wavefront *ext = table.prev(s, p.gapExtend);
            emit(CigarOp::Insertion, 1);
            if (ext && ext->dAt(k + 1) == h) {
                s -= p.gapExtend;
                comp = Comp::D;
            } else {
                gpx_assert(open && open->mAt(k + 1) == h,
                           "WFA traceback lost the D path");
                s -= p.gapOpen + p.gapExtend;
                comp = Comp::M;
            }
            k += 1;
        }
    }

    std::reverse(rev.begin(), rev.end());
    genomics::Cigar cigar;
    for (const auto &e : rev)
        cigar.push(e.op, e.len);
    return cigar;
}

} // namespace

WfaResult
wfaGlobalAlign(const genomics::DnaSequence &query,
               const genomics::DnaSequence &text,
               const WfaPenalties &penalties, u32 max_penalty)
{
    WfaResult result;
    const i64 n = static_cast<i64>(text.size());
    const i64 m = static_cast<i64>(query.size());
    const i64 kFinal = n - m;

    WavefrontTable table(query, text, penalties);
    for (u32 s = 0;; ++s) {
        if (s > max_penalty)
            return result; // cap hit; result.valid stays false
        result.wavefrontOps += table.compute(s);
        const Wavefront &wf = table.at(s);
        if (wf.inRange(kFinal) && wf.mAt(kFinal) >= n) {
            result.valid = true;
            result.penalty = s;
            result.cigar = traceback(table, penalties, s, n, m);
            return result;
        }
    }
}

} // namespace align
} // namespace gpx
