/**
 * @file
 * SIMD-across-batch shifted Hamming mask kernel (ShdBatch).
 *
 * The scalar datapath (shd.cc) builds each mask with a shifted
 * two-word combine per plane followed by XOR/OR/NOT — ~6 word ops per
 * mask word. Here the same ops run over lane-major stores, so one
 * vector register carries the w-th mask word of 4 (AVX2) or 8
 * (AVX-512) candidate lanes and the whole 2e+1 mask family of a lane
 * group costs one sweep per shift. The per-lane popcount and
 * prefix/suffix extraction stay word-scalar (three words per lane);
 * they are the cheap side of the filter.
 *
 * Bit-identity with BitPlanes::equalityMaskInto() is by construction:
 * lane l's staged plane words are lane l's scalar plane words (zero
 * padded where the scalar fetch would have bounds-checked to zero),
 * and the valid-bit clearing replays the scalar clamp per lane. The
 * multiversioning scheme matches affine_simd.cc: one template, plain
 * u64 lane loops, instantiated under per-function target attributes
 * and dispatched through util::activeSimdBackend().
 */

#include <algorithm>
#include <bit>

#include "align/shd.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace gpx {
namespace align {

namespace {

/**
 * Mask words of every (shift, word, lane) cell. The lane count is
 * runtime (ragged final groups), so the lane loop is plain u64 code;
 * the fixed shift/XOR arithmetic autovectorizes under the wrappers'
 * target ISAs below.
 */
[[gnu::always_inline]] inline void
maskKernel(const ShdBatch &b, u64 *out)
{
    const u32 L = b.lanes;
    const u64 *rlo = b.readLo.data();
    const u64 *rhi = b.readHi.data();
    const u64 *wlo = b.winLo.data();
    const u64 *whi = b.winHi.data();

    for (u32 si = 0; si < b.shifts(); ++si) {
        // Window offset of this shift: center - e + si (center >= e
        // is asserted in begin()).
        const u32 off = b.center - b.e + si;
        const u32 sh = off & 63u;
        const std::size_t wordOff = off >> 6;
        u64 *maskS = out + static_cast<std::size_t>(si) * b.readWords * L;
        for (u32 w = 0; w < b.readWords; ++w) {
            const u64 *rloW = rlo + static_cast<std::size_t>(w) * L;
            const u64 *rhiW = rhi + static_cast<std::size_t>(w) * L;
            const u64 *wloW = wlo + (w + wordOff) * L;
            const u64 *whiW = whi + (w + wordOff) * L;
            u64 *outW = maskS + static_cast<std::size_t>(w) * L;
            if (sh == 0) {
                for (u32 l = 0; l < L; ++l)
                    outW[l] = ~((rloW[l] ^ wloW[l]) | (rhiW[l] ^ whiW[l]));
            } else {
                const u64 *wloN = wloW + L;
                const u64 *whiN = whiW + L;
                for (u32 l = 0; l < L; ++l) {
                    const u64 glo = (wloW[l] >> sh) | (wloN[l] << (64 - sh));
                    const u64 ghi = (whiW[l] >> sh) | (whiN[l] << (64 - sh));
                    outW[l] = ~((rloW[l] ^ glo) | (rhiW[l] ^ ghi));
                }
            }
        }
    }
}

#if GPX_SIMD_MULTIVERSION
__attribute__((target("avx2"))) void
maskKernelAvx2(const ShdBatch &b, u64 *out)
{
    maskKernel(b, out);
}

__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"))) void
maskKernelAvx512(const ShdBatch &b, u64 *out)
{
    maskKernel(b, out);
}
#else
void
maskKernelAvx2(const ShdBatch &b, u64 *out)
{
    maskKernel(b, out);
}

void
maskKernelAvx512(const ShdBatch &b, u64 *out)
{
    maskKernel(b, out);
}
#endif

/** Ones-prefix of one lane's mask words (same walk as HammingMask). */
u32
lanePrefix(const u64 *words, u32 stride, u32 nWords, u32 bits)
{
    u32 run = 0;
    for (u32 w = 0; w < nWords; ++w) {
        u32 remaining = bits - w * 64;
        u32 inWord = remaining < 64 ? remaining : 64;
        u64 v = words[static_cast<std::size_t>(w) * stride];
        if (inWord < 64)
            v |= ~u64{0} << inWord;
        u32 ones = static_cast<u32>(std::countr_one(v));
        if (ones >= inWord) {
            run += inWord;
            continue;
        }
        run += ones;
        break;
    }
    return run < bits ? run : bits;
}

/** Ones-suffix of one lane's mask words (same walk as HammingMask). */
u32
laneSuffix(const u64 *words, u32 stride, u32 nWords, u32 bits)
{
    u32 run = 0;
    for (u32 idx = nWords; idx > 0; --idx) {
        u32 w = idx - 1;
        u32 base = w * 64;
        u32 inWord = bits - base < 64 ? bits - base : 64;
        u64 v = words[static_cast<std::size_t>(w) * stride];
        v <<= (64 - inWord);
        u32 ones = static_cast<u32>(std::countl_one(v));
        if (ones >= inWord) {
            run += inWord;
            continue;
        }
        run += ones;
        break;
    }
    return run < bits ? run : bits;
}

} // namespace

void
ShdBatch::begin(u32 lane_count, u32 read_bits, u32 center_off,
                u32 max_shift)
{
    gpx_assert(center_off >= max_shift,
               "window must extend e bases left of center");
    lanes = lane_count;
    bits = read_bits;
    center = center_off;
    e = max_shift;
    readWords = (bits + 63) / 64;
    // The shifted fetch of read word w touches window words
    // w + (off >> 6) and the one after; stage enough zero-padded words
    // that the widest shift stays in bounds.
    winWords = readWords + ((center + e) >> 6) + 2;

    readLo.assign(static_cast<std::size_t>(readWords) * lanes, 0);
    readHi.assign(static_cast<std::size_t>(readWords) * lanes, 0);
    winLo.assign(static_cast<std::size_t>(winWords) * lanes, 0);
    winHi.assign(static_cast<std::size_t>(winWords) * lanes, 0);
    winBits.assign(lanes, 0);
    maskWords.assign(
        static_cast<std::size_t>(shifts()) * readWords * lanes, 0);
    popcount.assign(static_cast<std::size_t>(shifts()) * lanes, 0);
    prefix.assign(static_cast<std::size_t>(shifts()) * lanes, 0);
    suffix.assign(static_cast<std::size_t>(shifts()) * lanes, 0);
}

void
ShdBatch::setLane(u32 lane, const BitPlanes &read_planes,
                  const BitPlanes &window_planes)
{
    gpx_assert(lane < lanes, "ShdBatch lane out of range");
    gpx_assert(read_planes.bits() == bits,
               "ShdBatch lanes need a uniform read length");
    const std::vector<u64> &rl = read_planes.lo();
    const std::vector<u64> &rh = read_planes.hi();
    for (u32 w = 0; w < readWords; ++w) {
        readLo[static_cast<std::size_t>(w) * lanes + lane] = rl[w];
        readHi[static_cast<std::size_t>(w) * lanes + lane] = rh[w];
    }
    const std::vector<u64> &gl = window_planes.lo();
    const std::vector<u64> &gh = window_planes.hi();
    const u32 have = static_cast<u32>(
        std::min<std::size_t>(gl.size(), winWords));
    for (u32 w = 0; w < have; ++w) {
        winLo[static_cast<std::size_t>(w) * lanes + lane] = gl[w];
        winHi[static_cast<std::size_t>(w) * lanes + lane] = gh[w];
    }
    for (u32 w = have; w < winWords; ++w) {
        winLo[static_cast<std::size_t>(w) * lanes + lane] = 0;
        winHi[static_cast<std::size_t>(w) * lanes + lane] = 0;
    }
    winBits[lane] = window_planes.bits();
}

void
ShdBatch::run()
{
    if (lanes == 0 || bits == 0)
        return;

    const util::SimdBackend backend = util::activeSimdBackend();
    if (backend == util::SimdBackend::Avx512)
        maskKernelAvx512(*this, maskWords.data());
    else if (backend == util::SimdBackend::Avx2)
        maskKernelAvx2(*this, maskWords.data());
    else
        maskKernel(*this, maskWords.data());

    // Clear bits beyond the read length and beyond each lane's window
    // (the scalar clamp of equalityMaskInto(), replayed per lane),
    // then extract the three per-(shift, lane) statistics.
    for (u32 si = 0; si < shifts(); ++si) {
        const u32 off = center - e + si;
        u64 *maskS =
            maskWords.data() +
            static_cast<std::size_t>(si) * readWords * lanes;
        for (u32 l = 0; l < lanes; ++l) {
            u32 valid = bits;
            if (off > winBits[l])
                valid = 0;
            else if (winBits[l] - off < bits)
                valid = winBits[l] - off;
            for (u32 w = 0; w < readWords; ++w) {
                u64 &word = maskS[static_cast<std::size_t>(w) * lanes + l];
                const u32 base = w * 64;
                if (base >= valid)
                    word = 0;
                else if (valid - base < 64)
                    word &= (u64{1} << (valid - base)) - 1;
            }
            u32 pop = 0;
            for (u32 w = 0; w < readWords; ++w)
                pop += static_cast<u32>(std::popcount(
                    maskS[static_cast<std::size_t>(w) * lanes + l]));
            popcount[static_cast<std::size_t>(si) * lanes + l] = pop;
            prefix[static_cast<std::size_t>(si) * lanes + l] =
                lanePrefix(maskS + l, lanes, readWords, bits);
            suffix[static_cast<std::size_t>(si) * lanes + l] =
                laneSuffix(maskS + l, lanes, readWords, bits);
        }
    }
}

} // namespace align
} // namespace gpx
