/**
 * @file
 * Inter-sequence interleaved banded-affine fitting alignment.
 *
 * fitAlignBatch() advances up to L independent alignments per band
 * sweep: lane l of every struct-of-lanes row (H/E1/E2/F1/F2) belongs
 * to task l of the current lane group, so one pass over the band
 * columns updates L DP cells with the exact arithmetic of the scalar
 * branchless engine (affine.cc). Lanes never exchange data — per-lane
 * activity masks cover ragged target lengths, differing bands and
 * early-drained lanes — so every per-task result is bit-identical to
 * fitAlign() by construction; the randomized oracle tests in
 * tests/test_simd.cc pin that lane for lane.
 *
 * Layout notes:
 *  - Rows are lane-major: row[j*L + l]. The traceback matrix is too
 *    ([(i*(nMax+1)+j)*L + l]), so the L flag bytes of cell (i, j) form
 *    one contiguous store per sweep step; the traceback walk reads one
 *    lane back out through a strided accessor.
 *  - Lane groups are consecutive tasks with equal query length m (the
 *    rows of a group share the query index i). Short-read batches are
 *    length-uniform, so groups fill; a length change just starts a new
 *    group. Lanes whose band drains early (small n) go inactive via
 *    the same mask; fresh tasks refill the lanes at the next group.
 *
 * The inner loop is written as a fixed-trip-count lane loop of plain
 * i32 selects so the compiler's vectorizer turns it into compare/blend
 * vectors under the function-level target("avx2")/target("avx512...")
 * attributes — no global -m flags, no intrinsics, one template
 * instantiated per ISA (util/simd.hh picks the backend at runtime).
 */

#include <algorithm>

#include "align/affine.hh"
#include "align/affine_internal.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace gpx {
namespace align {

using genomics::DnaView;
using genomics::ScoringScheme;

namespace {

using namespace affine_detail;

/** Per-group fill-loop inputs (everything the hot loop touches). */
template <u32 L>
struct FillArgs
{
    std::size_t m = 0;    ///< uniform query length of the group
    std::size_t nMax = 0; ///< widest target in the group
    std::size_t n[L];     ///< per-lane target length (0 = unused lane)
    i64 band[L];          ///< per-lane band half-width (<0 = unbanded)
    const ScoringScheme *sc = nullptr;
    const i32 *queryCodes = nullptr;  ///< lane-major [(i-1)*L + l]
    const i32 *targetCodes = nullptr; ///< lane-major [(j-1)*L + l]
    i32 *hPrev = nullptr;             ///< lane-major rows, (nMax+1)*L
    i32 *hCur = nullptr;
    i32 *f1 = nullptr;
    i32 *f2 = nullptr;
    u8 *tb = nullptr; ///< lane-major matrix, (m+1)*(nMax+1)*L
};

/**
 * One band column of the interleaved sweep: update the L lanes of DP
 * cell (i, j). Factored out so the pointers are restrict-qualified
 * function parameters — GCC only gives restrict full disambiguation
 * force on parameters, and without it the lane loop exceeds the
 * vectorizer's runtime alias-check budget and stays scalar.
 */
template <u32 L>
[[gnu::always_inline]] inline void
fitStep(i32 jj, i32 oe1, i32 oe2, i32 ge1, i32 ge2, i32 match,
        i32 mismatch, const i32 *__restrict__ qRow,
        const i32 *__restrict__ tcj, const i32 *__restrict__ hcl,
        i32 *__restrict__ hcj, const i32 *__restrict__ hpj,
        const i32 *__restrict__ hpd, i32 *__restrict__ f1j,
        i32 *__restrict__ f2j, u8 *__restrict__ tbj,
        i32 *__restrict__ e1Lane, i32 *__restrict__ e2Lane,
        const i32 *__restrict__ jLoA, const i32 *__restrict__ jHiA)
{
    i32 flagsOut[L];
    // The restrict qualifiers above are the truth (lanes are disjoint
    // and every pointer block is a distinct scratch range), but after
    // inlining GCC still versions the loop for aliasing and gives up
    // past 10 pointer pairs; ivdep waives those checks outright.
#pragma GCC ivdep
    for (u32 l = 0; l < L; ++l) {
        // Bitwise &, not && — short-circuit control flow inside the
        // lane loop blocks if-conversion and with it vectorization.
        const bool act =
            static_cast<bool>(static_cast<int>(jj >= jLoA[l]) &
                              static_cast<int>(jj <= jHiA[l]));

        // E: gap consuming target (deletion from the read).
        const i32 hLeft = hcl[l];
        const i32 e1Open = hLeft - oe1;
        const i32 e1Ext = e1Lane[l] - ge1;
        const bool x1 = e1Ext > e1Open;
        const i32 e1v = x1 ? e1Ext : e1Open;
        const i32 e2Open = hLeft - oe2;
        const i32 e2Ext = e2Lane[l] - ge2;
        const bool x2 = e2Ext > e2Open;
        const i32 e2v = x2 ? e2Ext : e2Open;

        // F: gap consuming query (insertion).
        const i32 hUp = hpj[l];
        const i32 f1Open = hUp - oe1;
        const i32 f1Ext = f1j[l] - ge1;
        const bool x3 = f1Ext > f1Open;
        const i32 f1v = x3 ? f1Ext : f1Open;
        const i32 f2Open = hUp - oe2;
        const i32 f2Ext = f2j[l] - ge2;
        const bool x4 = f2Ext > f2Open;
        const i32 f2v = x4 ? f2Ext : f2Open;

        const i32 hDiag = hpd[l];
        const i32 sub = qRow[l] == tcj[l] ? match : -mismatch;
        const i32 diag = hDiag == kNegInf ? kNegInf : hDiag + sub;

        i32 h = diag;
        i32 src = kSrcDiag;
        src = e1v > h ? kSrcE1 : src;
        h = e1v > h ? e1v : h;
        src = e2v > h ? kSrcE2 : src;
        h = e2v > h ? e2v : h;
        src = f1v > h ? kSrcF1 : src;
        h = f1v > h ? f1v : h;
        src = f2v > h ? kSrcF2 : src;
        h = f2v > h ? f2v : h;

        const i32 flags = src | (static_cast<i32>(x1) << 3) |
                          (static_cast<i32>(x2) << 4) |
                          (static_cast<i32>(x3) << 5) |
                          (static_cast<i32>(x4) << 6);

        e1Lane[l] = act ? e1v : e1Lane[l];
        e2Lane[l] = act ? e2v : e2Lane[l];
        f1j[l] = act ? f1v : f1j[l];
        f2j[l] = act ? f2v : f2j[l];
        hcj[l] = act ? h : hcj[l];
        flagsOut[l] = act ? flags : 0;
    }
    // Narrow the flag lane to its traceback bytes in a second loop:
    // a u8 store inside the i32 loop above defeats the vectorizer
    // ("complicated access pattern"), while this pack loop and the
    // main loop each vectorize cleanly.
    for (u32 l = 0; l < L; ++l)
        tbj[l] = static_cast<u8>(flagsOut[l]);
}

/**
 * The interleaved Fit-mode fill loop. Marked always_inline so each
 * target-attributed wrapper below compiles its own copy under that
 * wrapper's ISA — the whole point of the multiversioning scheme.
 * Returns the row buffer holding row m (the swap chain's final hPrev).
 */
template <u32 L>
[[gnu::always_inline]] inline const i32 *
fitFillLanes(const FillArgs<L> &a)
{
    const ScoringScheme &sc = *a.sc;
    const i32 oe1 = sc.gapOpen1 + sc.gapExtend1;
    const i32 oe2 = sc.gapOpen2 + sc.gapExtend2;
    const i32 ge1 = sc.gapExtend1;
    const i32 ge2 = sc.gapExtend2;
    const i32 match = sc.match;
    const i32 mismatch = sc.mismatch;
    const std::size_t rowElems = (a.nMax + 1) * L;

    i32 *__restrict__ hp = a.hPrev;
    i32 *__restrict__ hc = a.hCur;
    i32 *__restrict__ f1 = a.f1;
    i32 *__restrict__ f2 = a.f2;
    u8 *__restrict__ tb = a.tb;
    const i32 *__restrict__ queryCodes = a.queryCodes;
    const i32 *__restrict__ targetCodes = a.targetCodes;

    // Row 0 (Fit): free target start up to each lane's n.
    std::fill(hp, hp + rowElems, kNegInf);
    std::fill(hc, hc + rowElems, kNegInf);
    std::fill(f1, f1 + rowElems, kNegInf);
    std::fill(f2, f2 + rowElems, kNegInf);
    for (u32 l = 0; l < L; ++l) {
        for (std::size_t j = 0; j <= a.n[l]; ++j) {
            hp[j * L + l] = 0;
            tb[j * L + l] = kSrcStart;
        }
    }

    alignas(64) i32 e1Lane[L];
    alignas(64) i32 e2Lane[L];
    alignas(64) i32 jLoA[L];
    alignas(64) i32 jHiA[L];

    for (std::size_t i = 1; i <= a.m; ++i) {
        std::size_t jMin = a.nMax + 1, jMax = 0;
        for (u32 l = 0; l < L; ++l) {
            e1Lane[l] = kNegInf;
            e2Lane[l] = kNegInf;
            i64 lo = 1, hi = static_cast<i64>(a.n[l]);
            if (a.band[l] >= 0) {
                lo = std::max<i64>(1, static_cast<i64>(i) - a.band[l]);
                hi = std::min<i64>(hi, static_cast<i64>(i) + a.band[l]);
            }
            jLoA[l] = static_cast<i32>(lo);
            jHiA[l] = static_cast<i32>(hi);
            if (a.n[l] == 0)
                continue; // unused lane: hi already < lo
            if (hi >= lo) {
                jMin = std::min(jMin, static_cast<std::size_t>(lo));
                jMax = std::max(jMax, static_cast<std::size_t>(hi));
            }
            // Maintain F across the banded region; reset off-band
            // columns (clamped, matching the scalar engines).
            if (a.band[l] >= 0 && lo > 1 &&
                lo - 1 <= static_cast<i64>(a.n[l])) {
                f1[static_cast<std::size_t>(lo - 1) * L + l] = kNegInf;
                f2[static_cast<std::size_t>(lo - 1) * L + l] = kNegInf;
            }
        }
        std::fill(hc, hc + rowElems, kNegInf);

        u8 *tbRow = tb + i * (a.nMax + 1) * L;

        // Column 0: query-only gap (uniform across lanes — same i).
        {
            const i32 h0 = -sc.gapCost(static_cast<u32>(i));
            const bool piece1 =
                sc.gapOpen1 + static_cast<i32>(i) * ge1 <=
                sc.gapOpen2 + static_cast<i32>(i) * ge2;
            u8 flags = piece1 ? kSrcF1 : kSrcF2;
            if (i > 1)
                flags |= piece1 ? kExtF1 : kExtF2;
            for (u32 l = 0; l < L; ++l) {
                hc[l] = h0;
                tbRow[l] = flags;
            }
        }

        const i32 *__restrict__ qRow = queryCodes + (i - 1) * L;

        for (std::size_t j = jMin; j <= jMax; ++j) {
            const i32 *__restrict__ tcj = targetCodes + (j - 1) * L;
            const i32 *__restrict__ hcl = hc + (j - 1) * L;
            i32 *__restrict__ hcj = hc + j * L;
            const i32 *__restrict__ hpj = hp + j * L;
            const i32 *__restrict__ hpd = hp + (j - 1) * L;
            i32 *__restrict__ f1j = f1 + j * L;
            i32 *__restrict__ f2j = f2 + j * L;
            u8 *__restrict__ tbj = tbRow + j * L;
            const i32 jj = static_cast<i32>(j);

            fitStep<L>(jj, oe1, oe2, ge1, ge2, match, mismatch, qRow,
                       tcj, hcl, hcj, hpj, hpd, f1j, f2j, tbj, e1Lane,
                       e2Lane, jLoA, jHiA);
        }
        std::swap(hp, hc);
    }
    return hp;
}

#if GPX_SIMD_MULTIVERSION
__attribute__((target("avx2"))) const i32 *
fitFillAvx2(const FillArgs<8> &a)
{
    return fitFillLanes<8>(a);
}

__attribute__((target("avx512f,avx512bw,avx512dq,avx512vl"))) const i32 *
fitFillAvx512(const FillArgs<16> &a)
{
    return fitFillLanes<16>(a);
}
#else
const i32 *
fitFillAvx2(const FillArgs<8> &a)
{
    return fitFillLanes<8>(a);
}

const i32 *
fitFillAvx512(const FillArgs<16> &a)
{
    return fitFillLanes<16>(a);
}
#endif

/** cellUpdates of one task, exactly as the scalar engines count them. */
u64
countCells(std::size_t m, std::size_t n, i64 band)
{
    u64 cells = 0;
    for (std::size_t i = 1; i <= m; ++i) {
        i64 lo = 1, hi = static_cast<i64>(n);
        if (band >= 0) {
            lo = std::max<i64>(1, static_cast<i64>(i) - band);
            hi = std::min<i64>(hi, static_cast<i64>(i) + band);
        }
        if (hi >= lo)
            cells += static_cast<u64>(hi - lo + 1);
    }
    return cells;
}

/**
 * Run one lane group of @p count (<= L) tasks with uniform query
 * length through the interleaved engine and extract per-lane results.
 */
template <u32 L>
void
fitGroup(const FitTask *tasks, u32 count, const ScoringScheme &scheme,
         BatchAlignScratch &scr, AlignResult *out)
{
    FillArgs<L> a;
    a.m = tasks[0].query.size();
    a.sc = &scheme;
    for (u32 l = 0; l < L; ++l) {
        a.n[l] = 0;
        a.band[l] = -1;
    }
    for (u32 l = 0; l < count; ++l) {
        a.n[l] = tasks[l].target.size();
        a.band[l] = tasks[l].band;
        a.nMax = std::max(a.nMax, a.n[l]);
    }
    gpx_assert((a.m + 1) * (a.nMax + 1) <= (1ull << 27),
               "DP matrix too large; use banding or smaller windows");

    const std::size_t rowElems = (a.nMax + 1) * L;
    scr.traceback.assign((a.m + 1) * (a.nMax + 1) * L, 0);
    scr.queryCodes.assign(a.m * L, 0);
    scr.targetCodes.assign(a.nMax * L, 0);
    scr.hPrev.resize(rowElems);
    scr.hCur.resize(rowElems);
    scr.f1.resize(rowElems);
    scr.f2.resize(rowElems);
    scr.decodeTmp.resize(std::max(a.m, a.nMax));

    // Gather decoded operands into the lane-major stores.
    for (u32 l = 0; l < count; ++l) {
        tasks[l].query.decodeTo(scr.decodeTmp.data());
        for (std::size_t i = 0; i < a.m; ++i)
            scr.queryCodes[i * L + l] = scr.decodeTmp[i];
        tasks[l].target.decodeTo(scr.decodeTmp.data());
        for (std::size_t j = 0; j < a.n[l]; ++j)
            scr.targetCodes[j * L + l] = scr.decodeTmp[j];
    }

    a.queryCodes = scr.queryCodes.data();
    a.targetCodes = scr.targetCodes.data();
    a.hPrev = scr.hPrev.data();
    a.hCur = scr.hCur.data();
    a.f1 = scr.f1.data();
    a.f2 = scr.f2.data();
    a.tb = scr.traceback.data();

    const i32 *rowM;
    if constexpr (L == 16)
        rowM = fitFillAvx512(a);
    else
        rowM = fitFillAvx2(a);

    // Per-lane end-cell scan + traceback (identical to the scalar Fit
    // epilogue; the traceback walker reads one lane of the lane-major
    // matrix through a strided accessor).
    const u8 *tb = scr.traceback.data();
    const std::size_t nMax = a.nMax;
    for (u32 l = 0; l < count; ++l) {
        AlignResult &res = out[l];
        res = AlignResult{};
        res.cellUpdates = countCells(a.m, a.n[l], a.band[l]);

        i32 best = kNegInf;
        std::size_t bestJ = 0;
        for (std::size_t j = 0; j <= a.n[l]; ++j) {
            if (rowM[j * L + l] > best) {
                best = rowM[j * L + l];
                bestJ = j;
            }
        }
        if (best <= kNegInf / 2)
            continue; // band excluded every complete path

        EngineResult er;
        tracebackPath(
            er,
            [&](std::size_t ti, std::size_t tj) {
                return tb[(ti * (nMax + 1) + tj) * L + l];
            },
            Mode::Fit, best, a.m, bestJ);
        res.valid = er.valid;
        res.score = er.score;
        res.cigar = std::move(er.cigar);
        res.targetStart = er.targetStart;
        res.targetEnd = er.targetEnd;
    }
}

} // namespace

void
fitAlignBatch(const FitTask *tasks, std::size_t count,
              const ScoringScheme &scheme, BatchAlignScratch &scratch,
              AlignResult *out)
{
    const util::SimdBackend backend = util::activeSimdBackend();
    std::size_t i = 0;
    while (i < count) {
        const std::size_t m = tasks[i].query.size();
        if (m == 0 || tasks[i].target.size() == 0) {
            // Degenerate task: the scalar engine reports invalid with
            // zero cells; keep that contract without burning a lane.
            out[i] = AlignResult{};
            ++i;
            continue;
        }
        if (backend == util::SimdBackend::Scalar) {
            out[i] = fitAlign(tasks[i].query, tasks[i].target, scheme,
                              tasks[i].band, scratch.scalar);
            ++i;
            continue;
        }
        const u32 lanes = util::simdDpLanes(backend);
        std::size_t g = i + 1;
        while (g < count && g - i < lanes &&
               tasks[g].query.size() == m && tasks[g].target.size() != 0)
            ++g;
        const u32 cnt = static_cast<u32>(g - i);
        if (backend == util::SimdBackend::Avx512)
            fitGroup<16>(tasks + i, cnt, scheme, scratch, out + i);
        else
            fitGroup<8>(tasks + i, cnt, scheme, scratch, out + i);
        i = g;
    }
}

} // namespace align
} // namespace gpx
