#include "hwsim/dram.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpx {
namespace hwsim {

DramChannel::DramChannel(const MemoryConfig &cfg, u32 queue_depth)
    : cfg_(cfg), queueDepth_(queue_depth), banks_(cfg.banksPerChannel)
{
}

void
DramChannel::push(const MemRequest &req)
{
    gpx_assert(canAccept(), "channel queue overflow");
    QueuedReq q;
    q.req = req;
    q.burstsLeft = std::max<u32>(
        1, (req.bytes + cfg_.burstBytes - 1) / cfg_.burstBytes);
    queue_.push_back(q);
    maxQueue_ = std::max(maxQueue_, queue_.size());
}

void
DramChannel::tick(u64 cycle)
{
    if (queue_.empty())
        return;

    // FR-FCFS-lite: look a short window ahead for a row hit; otherwise
    // serve the oldest request.
    constexpr std::size_t kScanWindow = 4;
    std::size_t pick = 0;
    bool havePick = false;
    for (std::size_t i = 0; i < std::min(queue_.size(), kScanWindow); ++i) {
        const auto &q = queue_[i];
        u64 rowGlobal = q.req.addr / cfg_.rowBytes;
        u32 bank = static_cast<u32>(rowGlobal % banks_.size());
        i64 row = static_cast<i64>(rowGlobal / banks_.size());
        if (banks_[bank].openRow == row && banks_[bank].readyCycle <= cycle) {
            pick = i;
            havePick = true;
            break;
        }
    }
    if (!havePick)
        pick = 0;

    auto &q = queue_[pick];
    u64 rowGlobal = q.req.addr / cfg_.rowBytes;
    u32 bankIdx = static_cast<u32>(rowGlobal % banks_.size());
    i64 row = static_cast<i64>(rowGlobal / banks_.size());
    Bank &bank = banks_[bankIdx];

    if (bank.readyCycle > cycle)
        return; // bank busy

    u64 dataStart;
    if (bank.openRow == row) {
        // Row hit: column access only.
        dataStart = std::max(cycle + cfg_.tCL, busFree_);
        ++stats_.rowHits;
    } else {
        // Row miss: precharge + activate + column access.
        if (bank.nextActivate > cycle)
            return; // tRC not yet satisfied
        u64 actDone = cycle + cfg_.tRP + cfg_.tRCD;
        dataStart = std::max(actDone + cfg_.tCL, busFree_);
        bank.openRow = row;
        bank.nextActivate = cycle + cfg_.tRC;
        ++stats_.activations;
    }

    u64 dataEnd = dataStart + cfg_.tBL;
    busFree_ = dataStart + std::max(cfg_.tBL, cfg_.tCCD);
    bank.readyCycle = cycle + std::max(cfg_.tCCD, 1u);
    stats_.busBusyCycles += cfg_.tBL;
    ++stats_.bursts;
    stats_.bytesRead += cfg_.burstBytes;

    // Advance within the request: the next burst hits the same row.
    q.req.addr += cfg_.burstBytes;
    if (--q.burstsLeft == 0) {
        ++stats_.requests;
        pending_.push_back({ q.req.tag, dataEnd });
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(pick));
    }
}

std::vector<MemResponse>
DramChannel::drain(u64 cycle)
{
    std::vector<MemResponse> done;
    auto it = pending_.begin();
    while (it != pending_.end()) {
        if (it->finishCycle <= cycle) {
            done.push_back(*it);
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
    return done;
}

} // namespace hwsim
} // namespace gpx
