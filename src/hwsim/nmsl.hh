/**
 * @file
 * Near-Memory Seed Locator (NMSL) simulator (paper §5.2, Fig. 7).
 *
 * Models the SeedMap Query engine placed at the HBM: the Seed and
 * Location tables are partitioned into per-channel subtables, requests
 * flow through per-channel input FIFOs into the DRAM channel model, and a
 * read-pair-granularity sliding window plus a centralized location buffer
 * bound the number of in-flight pairs (preventing the reordering
 * deadlock described in the paper). Regenerates Fig. 8 (throughput, FIFO
 * depth and SRAM versus window size) and feeds the end-to-end pipeline
 * model (Table 6, Fig. 9, Fig. 11).
 */

#ifndef GPX_HWSIM_NMSL_HH
#define GPX_HWSIM_NMSL_HH

#include <array>
#include <vector>

#include "genomics/readpair.hh"
#include "genpair/seedmap.hh"
#include "genpair/seeder.hh"
#include "hwsim/dram.hh"
#include "hwsim/mem_config.hh"
#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** Memory trace of one seed lookup. */
struct SeedTrace
{
    u32 hash = 0;      ///< masked seed hash (selects channel + address)
    u32 locCount = 0;  ///< Location Table entries for this seed
    u32 locOffset = 0; ///< Location Table offset (address locality)
};

/** Memory trace of one read-pair (six seeds). */
using PairTrace = std::array<SeedTrace, 6>;

/**
 * Seed/Location subtable-to-channel assignment policy. The paper
 * partitions by hash, relying on the uniform access distribution to
 * balance channels (§5.2); block mapping is the ablation showing why:
 * contiguous hash blocks concentrate hot seeds on few channels.
 */
enum class ChannelMapping
{
    HashInterleave, ///< channel = hash % channels (the paper's design)
    Block,          ///< channel = hash / (table_size / channels)
};

/** NMSL configuration. */
struct NmslConfig
{
    MemoryConfig mem = MemoryConfig::hbm2();
    /** Sliding-window size in read-pairs; 0 = no window (unbounded). */
    u32 windowSize = 1024;
    ChannelMapping mapping = ChannelMapping::HashInterleave;
    /** Seed-table size (for Block mapping); 0 = derive from hashes. */
    u64 tableEntries = u64{1} << 26;
    u32 seedEntryBytes = 8; ///< Seed Table read: [start,end) offset pair
    u32 locEntryBytes = 4;  ///< one Location Table entry
    u32 channelFifoDepth = 64; ///< per-channel input FIFO capacity
    /** Centralized-buffer FIFO depth = the index filtering threshold. */
    u32 maxLocsPerSeed = 500;
};

/** Simulation results. */
struct NmslResult
{
    u64 pairs = 0;
    u64 cycles = 0;
    double timeNs = 0;
    double mpairsPerSec = 0;
    double gbPerSec = 0;
    u64 bytesRead = 0;

    u64 maxChannelFifoDepth = 0; ///< Fig. 8b
    u64 centralBufferBytes = 0;  ///< window x 6 x threshold x 4B
    u64 channelFifoBytes = 0;
    u64 totalSramBytes = 0;      ///< Fig. 8c

    double dramDynamicPowerW = 0;
    double dramBackgroundPowerW = 0;
    double dramTotalPowerW = 0;

    u64 activations = 0;
    u64 rowHits = 0;
    u64 bursts = 0;
};

/**
 * Build an NMSL workload from a SeedMap and simulated read pairs: the
 * six partitioned seeds per pair in the forward-fragment orientation,
 * exactly the stream the Partitioned Seeding module emits.
 */
std::vector<PairTrace> buildWorkload(const genpair::SeedMapView &map,
                                     const std::vector<genomics::ReadPair>
                                         &pairs);

/** The NMSL cycle-level simulator. */
class NmslSim
{
  public:
    explicit NmslSim(const NmslConfig &config) : cfg_(config) {}

    /** Run the workload to completion and report metrics. */
    NmslResult run(const std::vector<PairTrace> &workload);

  private:
    NmslConfig cfg_;
};

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_NMSL_HH
