/**
 * @file
 * GenDP accelerator cost/capacity model (paper §7.4).
 *
 * GenDP [ISCA'23] is the DP fallback engine: residual chaining and
 * alignment demand is expressed in Million Cell Updates Per Second
 * (MCUPS) and converted to area/power through GenDP's efficiency
 * constants. The constants below are derived from paper Table 4: the
 * chain engine delivers 331,772 MCUPS in 174.9 mm^2 / 115.8 W and the
 * align engine 3,469,180 MCUPS in 139.4 mm^2 / 92.3 W (7 nm).
 */

#ifndef GPX_HWSIM_GENDP_HH
#define GPX_HWSIM_GENDP_HH

#include "hwsim/tech.hh"
#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** MCUPS-based GenDP sizing. */
class GenDpModel
{
  public:
    /** Chain-engine efficiency (MCUPS per mm^2 / per mW). */
    static constexpr double kChainMcupsPerMm2 = 331772.0 / 174.9;
    static constexpr double kChainMcupsPerMw = 331772.0 / 115800.0;

    /** Align-engine efficiency. */
    static constexpr double kAlignMcupsPerMm2 = 3469180.0 / 139.4;
    static constexpr double kAlignMcupsPerMw = 3469180.0 / 92300.0;

    /** Cost of a chain engine sized for @p mcups. */
    static BlockCost
    chainCost(double mcups)
    {
        return { mcups / kChainMcupsPerMm2, mcups / kChainMcupsPerMw };
    }

    /** Cost of an align engine sized for @p mcups. */
    static BlockCost
    alignCost(double mcups)
    {
        return { mcups / kAlignMcupsPerMm2, mcups / kAlignMcupsPerMw };
    }

    /**
     * Throughput capacity check: cell updates available per second from
     * an engine sized for @p mcups (1 MCUPS = 1e6 cells/s).
     */
    static double
    cellsPerSec(double mcups)
    {
        return mcups * 1e6;
    }
};

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_GENDP_HH
