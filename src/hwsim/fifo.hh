/**
 * @file
 * Bounded hardware FIFO used by the cycle-level pipeline simulator.
 * Tracks its own high-water mark so buffer-sizing studies (paper §7.2
 * "Optimization for Balancing") read directly off the simulation.
 */

#ifndef GPX_HWSIM_FIFO_HH
#define GPX_HWSIM_FIFO_HH

#include <deque>

#include "util/logging.hh"
#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** A bounded FIFO with occupancy statistics. */
template <typename T>
class Fifo
{
  public:
    explicit Fifo(std::size_t capacity) : capacity_(capacity) {}

    bool full() const { return items_.size() >= capacity_; }
    bool empty() const { return items_.empty(); }
    std::size_t size() const { return items_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Highest occupancy ever observed. */
    std::size_t maxOccupancy() const { return maxOccupancy_; }

    /** Cycles during which a push was refused (upstream stall). */
    u64 rejections() const { return rejections_; }

    /** Try to enqueue; returns false (and counts a stall) when full. */
    bool
    tryPush(const T &item)
    {
        if (full()) {
            ++rejections_;
            return false;
        }
        items_.push_back(item);
        if (items_.size() > maxOccupancy_)
            maxOccupancy_ = items_.size();
        return true;
    }

    const T &
    front() const
    {
        gpx_assert(!items_.empty(), "front() on empty FIFO");
        return items_.front();
    }

    T
    pop()
    {
        gpx_assert(!items_.empty(), "pop() on empty FIFO");
        T item = items_.front();
        items_.pop_front();
        return item;
    }

  private:
    std::size_t capacity_;
    std::deque<T> items_;
    std::size_t maxOccupancy_ = 0;
    u64 rejections_ = 0;
};

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_FIFO_HH
