/**
 * @file
 * Recorded-trace adapter: feed the hardware models from a real
 * software run instead of the synthetic workload generator.
 *
 * `gpx_map --trace FILE` records one PairTraceRecord per mapped pair
 * (the orientation-A seed stream with Location Table list lengths,
 * plus the Fig. 10 routing and the per-pair filter/light-align work).
 * This adapter parses that file back into
 *  - the NMSL replay stream (`std::vector<PairTrace>` for
 *    NmslSim::run, exactly what hwsim::buildWorkload() synthesizes),
 *  - a PipelineStats aggregate rebuilt from the recorded events, and
 *  - a WorkloadProfile (the paper's §7.2 software-profiling
 *    methodology) for PipelineModel::design / throughputUnder.
 *
 * Trace text format (gpx-stage-trace v1):
 *
 *   # gpx-stage-trace v1
 *   # tableBits <B>
 *   P h0 c0 h1 c1 h2 c2 h3 c3 h4 c4 h5 c5 route filterIters lightAligns
 *   ...
 *
 * Seed hashes are recorded unmasked; the adapter applies the image's
 * tableBits mask the way buildWorkload() does. route is the
 * genpair::PairRoute value (1 = light aligned, 2 = light fallback,
 * 3 = seed miss, 4 = PA miss).
 */

#ifndef GPX_HWSIM_TRACE_ADAPTER_HH
#define GPX_HWSIM_TRACE_ADAPTER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "genpair/pipeline.hh"
#include "genpair/stages.hh"
#include "hwsim/module_models.hh"
#include "hwsim/nmsl.hh"
#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** A recorded software run, ready to drive the hardware models. */
struct RecordedRun
{
    u32 tableBits = 0;
    /** NMSL replay stream (hashes masked to tableBits). */
    std::vector<PairTrace> traces;
    /**
     * Pipeline counters rebuilt from the recorded stage events —
     * exactly the fields profile() consumes: pairsTotal, the three
     * fallback-route counters, lightAligned, query.filterIterations
     * and lightAlignsAttempted. The trace does not record DP outcomes
     * or the orientation-B lookups, so dpAligned / unmapped /
     * fullDpMapped / query.seedLookups / query.locationsFetched stay
     * zero; compare those against the run's --stats-json instead.
     */
    genpair::PipelineStats stats;
    /** Mean recorded Location Table list length (paper Obs. 2). */
    double avgLocationsPerSeed = 0;

    /**
     * WorkloadProfile from the recorded events. The trace does not
     * carry DP cell densities (they are properties of the fallback
     * aligner, not of the stage graph); the paper defaults are used
     * unless measured values are passed.
     */
    WorkloadProfile profile(
        u32 read_len = 150,
        double chain_cells_per_fallback =
            WorkloadProfile{}.chainCellsPerFullDpPair,
        double align_cells_per_dp_pair =
            WorkloadProfile{}.alignCellsPerDpPair) const;

    /** NmslConfig sized to the recorded Seed Table (tableEntries). */
    NmslConfig
    nmslConfig(NmslConfig base = {}) const
    {
        base.tableEntries = u64{ 1 } << tableBits;
        return base;
    }
};

/** Write the trace header; PairTraceRecord::writeText lines follow. */
void writeTraceHeader(std::ostream &os, u32 table_bits);

/**
 * Parse a gpx-stage-trace stream. Returns false and sets @p error on
 * malformed input (wrong magic, truncated record, bad route).
 */
bool loadRecordedRun(std::istream &is, RecordedRun *out,
                     std::string *error);

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_TRACE_ADAPTER_HH
