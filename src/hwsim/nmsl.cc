#include "hwsim/nmsl.hh"

#include <algorithm>
#include <deque>

#include "util/logging.hh"

namespace gpx {
namespace hwsim {

std::vector<PairTrace>
buildWorkload(const genpair::SeedMapView &map,
              const std::vector<genomics::ReadPair> &pairs)
{
    genpair::PartitionedSeeder seeder(map);
    std::vector<PairTrace> out;
    out.reserve(pairs.size());
    const u32 maskBits = map.tableBits();
    const u32 mask = (1u << maskBits) - 1;
    for (const auto &pair : pairs) {
        PairTrace trace{};
        genomics::DnaSequence r2 = pair.second.seq.revComp();
        auto s1 = seeder.extract(pair.first.seq);
        auto s2 = seeder.extract(r2);
        for (int i = 0; i < 3; ++i) {
            const genpair::Seed &a = s1[static_cast<std::size_t>(i)];
            const genpair::Seed &b = s2[static_cast<std::size_t>(i)];
            trace[static_cast<std::size_t>(i)] = {
                a.hash & mask, static_cast<u32>(map.lookup(a.hash).size()),
                0
            };
            trace[static_cast<std::size_t>(i + 3)] = {
                b.hash & mask, static_cast<u32>(map.lookup(b.hash).size()),
                0
            };
        }
        out.push_back(trace);
    }
    return out;
}

NmslResult
NmslSim::run(const std::vector<PairTrace> &workload)
{
    const MemoryConfig &mem = cfg_.mem;
    const u32 nch = mem.channels;
    const u64 window =
        cfg_.windowSize == 0 ? workload.size() : cfg_.windowSize;

    std::vector<DramChannel> channels(nch, DramChannel(mem, 16));
    // Per-channel software-side input FIFO (in front of the controller).
    std::vector<std::deque<MemRequest>> fifos(nch);
    u64 maxFifoDepth = 0;

    // In-flight pair bookkeeping.
    struct PairState
    {
        u32 seedsLeft = 6;
    };
    std::vector<PairState> inFlight(workload.size());
    u64 nextAdmit = 0;  ///< next pair index to enter the window
    u64 retired = 0;
    u64 admitted = 0;

    // Tag encoding: pair * 16 + seed * 2 + phase (0 = seed table,
    // 1 = location list).
    auto makeTag = [](u64 pair, u32 seed, u32 phase) {
        return pair * 16 + seed * 2 + phase;
    };

    // Address layout inside a channel: Seed Table first, then the
    // Location Table. Interleaving by hash spreads load uniformly;
    // Block mapping is the load-imbalance ablation.
    const u64 blockSize =
        std::max<u64>(1, cfg_.tableEntries / std::max(1u, nch));
    auto seedChannel = [&](u32 hash) -> u32 {
        if (cfg_.mapping == ChannelMapping::Block)
            return static_cast<u32>(
                std::min<u64>(nch - 1, hash / blockSize));
        return hash % nch;
    };
    auto seedAddr = [&](u32 hash) {
        return static_cast<u64>(hash / nch) * cfg_.seedEntryBytes;
    };
    const u64 locBase = u64{1} << 33; // distinct row region per channel
    auto locAddr = [&](u32 hash, u32 offset) {
        return locBase + static_cast<u64>(hash / nch) * 64 +
               static_cast<u64>(offset) * cfg_.locEntryBytes;
    };

    u64 cycle = 0;
    const u64 cycleLimit = u64{4} * 1000 * 1000 * 1000;

    auto pushFifo = [&](u32 ch, const MemRequest &req) {
        fifos[ch].push_back(req);
        maxFifoDepth = std::max<u64>(maxFifoDepth, fifos[ch].size());
    };

    while (retired < workload.size()) {
        gpx_assert(cycle < cycleLimit, "NMSL simulation did not converge");

        // Admit new pairs while the sliding window has room.
        while (nextAdmit < workload.size() && admitted < window) {
            const PairTrace &trace = workload[nextAdmit];
            for (u32 s = 0; s < 6; ++s) {
                const SeedTrace &st = trace[s];
                u32 ch = seedChannel(st.hash);
                MemRequest req;
                req.addr = seedAddr(st.hash);
                req.bytes = cfg_.seedEntryBytes;
                req.tag = makeTag(nextAdmit, s, 0);
                pushFifo(ch, req);
            }
            ++nextAdmit;
            ++admitted;
        }

        // Move FIFO heads into the memory controllers and tick them.
        for (u32 ch = 0; ch < nch; ++ch) {
            while (!fifos[ch].empty() && channels[ch].canAccept()) {
                channels[ch].push(fifos[ch].front());
                fifos[ch].pop_front();
            }
            channels[ch].tick(cycle);
        }

        // Handle completions.
        for (u32 ch = 0; ch < nch; ++ch) {
            for (const auto &resp : channels[ch].drain(cycle)) {
                u64 pairIdx = resp.tag / 16;
                u32 seedIdx = static_cast<u32>((resp.tag % 16) / 2);
                u32 phase = static_cast<u32>(resp.tag % 2);
                const SeedTrace &st = workload[pairIdx][seedIdx];
                if (phase == 0) {
                    // Seed Table entry arrived; fetch the location list.
                    u32 count = std::min(st.locCount, cfg_.maxLocsPerSeed);
                    if (count == 0) {
                        if (--inFlight[pairIdx].seedsLeft == 0) {
                            ++retired;
                            --admitted;
                        }
                        continue;
                    }
                    MemRequest req;
                    req.addr = locAddr(st.hash, st.locOffset);
                    req.bytes = count * cfg_.locEntryBytes;
                    req.tag = makeTag(pairIdx, seedIdx, 1);
                    pushFifo(ch, req);
                } else {
                    // Location list complete; the centralized buffer now
                    // holds this seed's locations.
                    if (--inFlight[pairIdx].seedsLeft == 0) {
                        ++retired;
                        --admitted;
                    }
                }
            }
        }
        ++cycle;
    }

    NmslResult res;
    res.pairs = workload.size();
    res.cycles = cycle;
    res.timeNs = static_cast<double>(cycle) / mem.clockGhz;
    res.mpairsPerSec =
        static_cast<double>(res.pairs) / res.timeNs * 1e3; // MPairs/s

    DramStats total;
    double dynNj = 0;
    for (const auto &ch : channels) {
        const DramStats &s = ch.stats();
        total.bytesRead += s.bytesRead;
        total.activations += s.activations;
        total.rowHits += s.rowHits;
        total.bursts += s.bursts;
        dynNj += s.dynamicEnergyNj(mem);
    }
    res.bytesRead = total.bytesRead;
    res.gbPerSec = static_cast<double>(total.bytesRead) / res.timeNs;
    res.activations = total.activations;
    res.rowHits = total.rowHits;
    res.bursts = total.bursts;

    res.maxChannelFifoDepth = maxFifoDepth;
    res.centralBufferBytes = window * 6 * cfg_.maxLocsPerSeed *
                             cfg_.locEntryBytes;
    res.channelFifoBytes =
        static_cast<u64>(nch) * std::max<u64>(maxFifoDepth, 4) * 8;
    res.totalSramBytes = res.centralBufferBytes + res.channelFifoBytes;

    res.dramDynamicPowerW = dynNj / res.timeNs; // nJ / ns = W
    res.dramBackgroundPowerW =
        mem.backgroundMwPerChannel * nch / 1000.0;
    res.dramTotalPowerW = res.dramDynamicPowerW + res.dramBackgroundPowerW;
    return res;
}

} // namespace hwsim
} // namespace gpx
