/**
 * @file
 * Performance models of the GenPairX compute modules (paper §7.2,
 * Table 3) and the workload profile that drives them.
 *
 * The paper's methodology: measure the data-dependent work per read-pair
 * by profiling the software GenPair implementation, convert to cycles at
 * 2 GHz, and replicate each module until it sustains the NMSL rate. The
 * WorkloadProfile carries exactly those measured quantities, so Table 3
 * regenerates from a software profiling run.
 */

#ifndef GPX_HWSIM_MODULE_MODELS_HH
#define GPX_HWSIM_MODULE_MODELS_HH

#include <cmath>
#include <string>

#include "genpair/pipeline.hh"
#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** Measured per-pair workload characteristics. */
struct WorkloadProfile
{
    u32 readLen = 150;
    /** PA-filter comparator iterations per pair (paper: 24.1). */
    double avgFilterIterationsPerPair = 24.1;
    /** Light alignments per pair (paper: 11.6). */
    double avgLightAlignsPerPair = 11.6;
    /** Average SeedMap locations per seed (paper Obs. 2: ~9.5). */
    double avgLocationsPerSeed = 9.5;

    /** Fallback fractions (paper Fig. 10). */
    double seedMissFrac = 0.0209;
    double paFallbackFrac = 0.0879;
    double lightFallbackFrac = 0.1306;

    /** DP cells per full-DP fallback pair (chaining stage). */
    double chainCellsPerFullDpPair = 15824.0;
    /** DP cells per DP-aligned pair (alignment stage). */
    double alignCellsPerDpPair = 75195.0;

    /** Fraction of pairs needing the full DP pipeline. */
    double
    fullDpFrac() const
    {
        return seedMissFrac + paFallbackFrac;
    }

    /** Fraction of pairs needing DP alignment (either fallback class). */
    double
    dpAlignFrac() const
    {
        return fullDpFrac() + lightFallbackFrac;
    }

    /** The paper's reported operating point (reference). */
    static WorkloadProfile paperDefault() { return {}; }

    /**
     * Build a profile from software pipeline statistics (the §7.2
     * methodology: profile GenPair in software, size hardware from it).
     */
    static WorkloadProfile fromStats(const genpair::PipelineStats &stats,
                                     u32 read_len,
                                     double chain_cells_per_fallback,
                                     double align_cells_per_dp_pair,
                                     double avg_locations_per_seed);
};

/** One sized hardware module (a Table 3 row). */
struct ModuleSpec
{
    std::string name;
    double cyclesPerPair = 0;     ///< average service cycles per pair
    double latencyCycles = 0;     ///< latency of one item
    double throughputMpairs = 0;  ///< sustained MPair/s of ONE instance
    u32 instances = 1;            ///< replicas to sustain the target rate

    double
    aggregateMpairs() const
    {
        return throughputMpairs * instances;
    }
};

/** Sizing calculator for the fixed-function modules. */
class ModuleModels
{
  public:
    explicit ModuleModels(double clock_ghz = 2.0) : clockGhz_(clock_ghz) {}

    double clockGhz() const { return clockGhz_; }

    /**
     * Partitioned Seeding: six pipelined xxHash units; input-data
     * independent. Paper: 333 MPair/s, 10-cycle latency, 1 instance.
     */
    ModuleSpec partitionedSeeding(double target_mpairs) const;

    /**
     * Paired-Adjacency Filtering: one comparator iteration per cycle;
     * cycles per pair = measured filter iterations.
     */
    ModuleSpec pairedAdjacencyFilter(const WorkloadProfile &w,
                                     double target_mpairs) const;

    /**
     * Light Alignment: all 2e+1 masks XOR-computed in one cycle, then
     * the masks are traversed from both ends over ~read_len cycles
     * (paper: 156 cycles for 150 bp).
     */
    ModuleSpec lightAlignment(const WorkloadProfile &w,
                              double target_mpairs) const;

    /** Cycles for one light alignment of a read of @p read_len. */
    static double
    lightAlignCycles(u32 read_len)
    {
        return read_len + 6; // mask setup + segment-compare epilogue
    }

  private:
    double clockGhz_;
};

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_MODULE_MODELS_HH
