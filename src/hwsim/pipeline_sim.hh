/**
 * @file
 * Cycle-level simulator of the full GenPairX datapath (paper Fig. 6):
 *
 *   NMSL source -> [circular buffer] -> Paired-Adjacency Filtering
 *   instances -> [circular buffer] -> Light Alignment instances -> sink
 *
 * Unlike the analytic ModuleModels (which size instances from mean
 * rates), this simulator executes per-pair data-dependent service times
 * with bounded inter-stage buffers and real backpressure, validating
 * that the Table 3 instance counts actually sustain the NMSL rate and
 * quantifying the circular-buffer depth the paper adds "to prevent the
 * stalling of the entire pipeline" (§7.2).
 */

#ifndef GPX_HWSIM_PIPELINE_SIM_HH
#define GPX_HWSIM_PIPELINE_SIM_HH

#include <vector>

#include "hwsim/fifo.hh"
#include "hwsim/module_models.hh"
#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** Data-dependent work of one read-pair. */
struct PairWork
{
    u32 paIterations = 24;  ///< PA-filter comparator cycles
    u32 lightAligns = 12;   ///< light alignments to run
    bool bypassLight = false; ///< full-DP fallback pairs skip the LA stage
};

/** Pipeline configuration. */
struct PipelineSimConfig
{
    double clockGhz = 2.0;
    /** NMSL sustained rate in MPair/s (the source's emission rate). */
    double nmslMpairs = 192.7;
    u32 paInstances = 3;
    u32 laInstances = 174;
    u32 readLen = 150;
    /** Circular-buffer depth between stages (pairs). */
    u32 bufferDepth = 1024;
};

/** Simulation outputs. */
struct PipelineSimResult
{
    u64 pairs = 0;
    u64 cycles = 0;
    double mpairsPerSec = 0;

    double paUtilization = 0;   ///< busy fraction of PA instances
    double laUtilization = 0;   ///< busy fraction of LA instances
    u64 sourceStallCycles = 0;  ///< cycles the NMSL was backpressured
    std::size_t buf1MaxOccupancy = 0; ///< NMSL -> PA buffer high-water
    std::size_t buf2MaxOccupancy = 0; ///< PA -> LA buffer high-water

    /** Fraction of the configured NMSL rate actually sustained. */
    double
    efficiencyVsNmsl(const PipelineSimConfig &cfg) const
    {
        return cfg.nmslMpairs > 0 ? mpairsPerSec / cfg.nmslMpairs : 0;
    }
};

/** The cycle-level pipeline simulator. */
class GenPairXPipelineSim
{
  public:
    explicit GenPairXPipelineSim(const PipelineSimConfig &config)
        : cfg_(config)
    {
    }

    /** Run the given per-pair workload to completion. */
    PipelineSimResult run(const std::vector<PairWork> &workload) const;

    /**
     * Synthesize a per-pair workload whose means match a measured
     * profile, with exponential-like dispersion (long location lists
     * make the real distributions heavy-tailed).
     */
    static std::vector<PairWork> synthesizeWorkload(
        const WorkloadProfile &profile, u64 pairs, u64 seed);

  private:
    PipelineSimConfig cfg_;
};

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_PIPELINE_SIM_HH
