#include "hwsim/pipeline_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpx {
namespace hwsim {

PipelineDesign
PipelineModel::design(const NmslResult &nmsl, const NmslConfig &cfg,
                      const WorkloadProfile &w) const
{
    PipelineDesign d;
    d.nmslMpairs = nmsl.mpairsPerSec;
    d.readLen = w.readLen;

    // Table 3: size each module to the NMSL rate.
    d.modules.push_back(modules_.partitionedSeeding(d.nmslMpairs));
    d.modules.push_back(modules_.pairedAdjacencyFilter(w, d.nmslMpairs));
    d.modules.push_back(modules_.lightAlignment(w, d.nmslMpairs));

    // GenDP sizing from residual MCUPS demand at the NMSL rate.
    double pairRate = d.nmslMpairs * 1e6;
    d.chainMcups = pairRate * w.fullDpFrac() * w.chainCellsPerFullDpPair /
                   1e6;
    d.alignMcups = pairRate * w.dpAlignFrac() * w.alignCellsPerDpPair / 1e6;

    // Table 4 roll-up (7 nm).
    auto add = [&](const std::string &name, const BlockCost &c28,
                   bool scale) {
        BlockCost c = scale ? TechModel::to7nm(c28) : c28;
        d.breakdown.push_back({ name, c });
        d.genPairXCost = d.genPairXCost + c;
    };
    const auto &ps = d.modules[0];
    const auto &pa = d.modules[1];
    const auto &la = d.modules[2];
    add("Partitioned Seeding",
        SynthesizedBlocks::partitionedSeeding() * ps.instances, true);
    add("Paired-Adjacency Filtering",
        SynthesizedBlocks::pairedAdjacencyFilter() * pa.instances, true);
    add("Light Alignment",
        SynthesizedBlocks::lightAlignment() * la.instances, true);
    add("HBM PHY", SynthesizedBlocks::hbmPhy(), false);
    add("Centralized Buffer",
        SramModel::cost(nmsl.centralBufferBytes, SramModel::Profile::Buffer),
        false);
    add("FIFOs",
        SramModel::cost(nmsl.channelFifoBytes, SramModel::Profile::Fifo),
        false);
    add("Interconnect (AXI-Stream)", SynthesizedBlocks::interconnect(),
        false);
    add("Batch FIFOs", SynthesizedBlocks::batchFifos(), false);

    d.genDpCost = GenDpModel::chainCost(d.chainMcups) +
                  GenDpModel::alignCost(d.alignMcups);
    d.totalCost = d.genPairXCost + d.genDpCost;

    // Balanced design: every stage matches the NMSL rate.
    d.endToEndMpairs = d.nmslMpairs;
    for (const auto &m : d.modules)
        d.endToEndMpairs = std::min(d.endToEndMpairs, m.aggregateMpairs());

    (void)cfg;
    return d;
}

double
PipelineModel::throughputUnder(const PipelineDesign &design,
                               const WorkloadProfile &w) const
{
    // The NMSL and the fixed-function modules cap the front end; GenDP
    // capacity caps the residual DP demand.
    double rate = design.nmslMpairs;

    ModuleSpec pa = modules_.pairedAdjacencyFilter(w, 1.0);
    ModuleSpec la = modules_.lightAlignment(w, 1.0);
    rate = std::min(rate,
                    pa.throughputMpairs * design.modules[1].instances);
    rate = std::min(rate,
                    la.throughputMpairs * design.modules[2].instances);

    if (w.fullDpFrac() > 0 && w.chainCellsPerFullDpPair > 0) {
        double cap = design.chainMcups /
                     (w.fullDpFrac() * w.chainCellsPerFullDpPair);
        rate = std::min(rate, cap);
    }
    if (w.dpAlignFrac() > 0 && w.alignCellsPerDpPair > 0) {
        double cap = design.alignMcups /
                     (w.dpAlignFrac() * w.alignCellsPerDpPair);
        rate = std::min(rate, cap);
    }
    return rate;
}

double
PipelineModel::longReadMbps(const PipelineDesign &design,
                            const LongReadWorkload &w) const
{
    // Front end: the NMSL sees pseudo-pairs, not reads.
    double readsFrontEnd =
        design.nmslMpairs * 1e6 / std::max(1.0, w.pseudoPairsPerRead);
    // Back end: every long read is DP-aligned on GenDP's align engine.
    double readsDp = GenDpModel::cellsPerSec(design.alignMcups) /
                     std::max(1.0, w.dpCellsPerRead);
    double reads = std::min(readsFrontEnd, readsDp);
    return reads * w.meanReadLen / 1e6;
}

} // namespace hwsim
} // namespace gpx
