/**
 * @file
 * Memory technology configurations for the DRAM channel model.
 *
 * Plays the role of Ramulator 2.0's config files (paper §6): HBM2 with 32
 * pseudo-channels (four 8 GB stacks, eight 128-bit channels each, 1 GHz
 * DDR), plus the DDR5 and GDDR6 points of the §7.5 scalability study
 * (Table 6). Energy constants approximate the DRAMsim3 HBM2e/DDR5/GDDR6
 * models.
 */

#ifndef GPX_HWSIM_MEM_CONFIG_HH
#define GPX_HWSIM_MEM_CONFIG_HH

#include <string>

#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** Per-channel DRAM parameters (timings in memory-clock cycles). */
struct MemoryConfig
{
    std::string name;
    u32 channels = 32;      ///< independent channels in the system
    u32 banksPerChannel = 16;
    double clockGhz = 1.0;  ///< command clock
    u32 busBytesPerCycle = 32; ///< data per clock (DDR already folded in)
    u32 burstBytes = 32;    ///< minimum access granularity
    u32 rowBytes = 1024;    ///< row-buffer size per bank

    u32 tRCD = 14; ///< activate -> read
    u32 tRP = 14;  ///< precharge
    u32 tCL = 14;  ///< read -> first data
    u32 tBL = 1;   ///< data-bus cycles per burst
    u32 tRC = 48;  ///< activate -> activate, same bank
    u32 tCCD = 1;  ///< read -> read, same bank group

    double actEnergyNj = 0.9;   ///< energy per activation (nJ)
    double readEnergyNjPerBurst = 0.35; ///< per-burst read energy (nJ)
    double backgroundMwPerChannel = 45.0;

    /** Peak channel bandwidth in GB/s. */
    double
    peakChannelGBps() const
    {
        return busBytesPerCycle * clockGhz;
    }

    /** Peak system bandwidth in GB/s. */
    double peakGBps() const { return peakChannelGBps() * channels; }

    /** HBM2, 4 stacks x 8 channels (the paper's primary configuration). */
    static MemoryConfig hbm2();
    /** DDR5, 4 channels (Table 6). */
    static MemoryConfig ddr5();
    /** GDDR6, 8 channels (Table 6). */
    static MemoryConfig gddr6();
};

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_MEM_CONFIG_HH
