#include "hwsim/module_models.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpx {
namespace hwsim {

WorkloadProfile
WorkloadProfile::fromStats(const genpair::PipelineStats &stats, u32 read_len,
                           double chain_cells_per_fallback,
                           double align_cells_per_dp_pair,
                           double avg_locations_per_seed)
{
    gpx_assert(stats.pairsTotal > 0, "empty pipeline statistics");
    WorkloadProfile w;
    w.readLen = read_len;
    double pairs = static_cast<double>(stats.pairsTotal);
    w.avgFilterIterationsPerPair = stats.query.filterIterations / pairs;
    w.avgLightAlignsPerPair = stats.lightAlignsAttempted / pairs;
    w.avgLocationsPerSeed = avg_locations_per_seed;
    w.seedMissFrac = stats.fraction(stats.seedMissFallback);
    w.paFallbackFrac = stats.fraction(stats.paFilterFallback);
    w.lightFallbackFrac = stats.fraction(stats.lightAlignFallback);
    w.chainCellsPerFullDpPair = chain_cells_per_fallback;
    w.alignCellsPerDpPair = align_cells_per_dp_pair;
    return w;
}

ModuleSpec
ModuleModels::partitionedSeeding(double target_mpairs) const
{
    ModuleSpec m;
    m.name = "Partitioned Seeding";
    m.cyclesPerPair = 6; // one hash issue slot per seed, fully pipelined
    m.latencyCycles = 10;
    m.throughputMpairs = clockGhz_ * 1e3 / m.cyclesPerPair;
    m.instances = static_cast<u32>(
        std::max(1.0, std::ceil(target_mpairs / m.throughputMpairs)));
    return m;
}

ModuleSpec
ModuleModels::pairedAdjacencyFilter(const WorkloadProfile &w,
                                    double target_mpairs) const
{
    ModuleSpec m;
    m.name = "Paired-Adjacency Filtering";
    m.cyclesPerPair = std::max(1.0, w.avgFilterIterationsPerPair);
    m.latencyCycles = m.cyclesPerPair;
    m.throughputMpairs = clockGhz_ * 1e3 / m.cyclesPerPair;
    m.instances = static_cast<u32>(
        std::max(1.0, std::ceil(target_mpairs / m.throughputMpairs)));
    return m;
}

ModuleSpec
ModuleModels::lightAlignment(const WorkloadProfile &w,
                             double target_mpairs) const
{
    ModuleSpec m;
    m.name = "Light Alignment";
    double perAlign = lightAlignCycles(w.readLen);
    m.cyclesPerPair = perAlign * std::max(1.0, w.avgLightAlignsPerPair);
    m.latencyCycles = perAlign;
    m.throughputMpairs = clockGhz_ * 1e3 / m.cyclesPerPair;
    m.instances = static_cast<u32>(
        std::max(1.0, std::ceil(target_mpairs / m.throughputMpairs)));
    return m;
}

} // namespace hwsim
} // namespace gpx
