#include "hwsim/mem_config.hh"

namespace gpx {
namespace hwsim {

MemoryConfig
MemoryConfig::hbm2()
{
    MemoryConfig c;
    c.name = "HBM2 (32 Channels)";
    c.channels = 32;
    c.banksPerChannel = 16;
    c.clockGhz = 1.0;       // 1 GHz DDR command clock
    c.busBytesPerCycle = 32; // 128-bit @ DDR = 32 B per command cycle
    c.burstBytes = 32;
    c.rowBytes = 1024;
    c.tRCD = 14;
    c.tRP = 14;
    c.tCL = 14;
    c.tBL = 1;
    c.tRC = 45;
    c.tCCD = 1;
    c.actEnergyNj = 0.91;
    c.readEnergyNjPerBurst = 0.34;
    c.backgroundMwPerChannel = 48.0;
    return c;
}

MemoryConfig
MemoryConfig::ddr5()
{
    MemoryConfig c;
    c.name = "DDR5 (4 channels)";
    c.channels = 4;
    c.banksPerChannel = 32;
    c.clockGhz = 2.4;       // DDR5-4800
    c.busBytesPerCycle = 16; // 64-bit @ DDR
    c.burstBytes = 64;      // BL16
    c.rowBytes = 8192;
    c.tRCD = 34;
    c.tRP = 34;
    c.tCL = 40;
    c.tBL = 4;
    c.tRC = 112;
    c.tCCD = 8;
    c.actEnergyNj = 2.1;
    c.readEnergyNjPerBurst = 1.1;
    c.backgroundMwPerChannel = 140.0;
    return c;
}

MemoryConfig
MemoryConfig::gddr6()
{
    MemoryConfig c;
    c.name = "GDDR6 (8 Channels)";
    c.channels = 8;
    c.banksPerChannel = 16;
    c.clockGhz = 1.75;      // 14 Gb/s pins / 8 (DDR quad pumped folded)
    c.busBytesPerCycle = 8;  // 32-bit channel, effective per command clock
    c.burstBytes = 32;
    c.rowBytes = 2048;
    c.tRCD = 24;
    c.tRP = 24;
    c.tCL = 24;
    c.tBL = 4;
    c.tRC = 78;
    c.tCCD = 4;
    c.actEnergyNj = 1.3;
    c.readEnergyNjPerBurst = 0.6;
    c.backgroundMwPerChannel = 85.0;
    return c;
}

} // namespace hwsim
} // namespace gpx
