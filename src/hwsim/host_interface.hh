/**
 * @file
 * Host-integration bandwidth model (paper §7.4, "Host integration").
 *
 * GenPairX is a PCIe-attached accelerator: the host streams 2-bit
 * encoded read pairs in and receives locations + CIGAR strings back.
 * The paper sizes this at 14.5 GB/s in and 5.4 GB/s out for the
 * saturated 192.7 MPair/s design and notes both PCIe Gen3 x16 and
 * Gen4 x16 suffice (links are full duplex, so the directions do not
 * share budget). This model reproduces that arithmetic for any design
 * point and read length, which the sizing bench and tests exercise.
 */

#ifndef GPX_HWSIM_HOST_INTERFACE_HH
#define GPX_HWSIM_HOST_INTERFACE_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** Host link demand of a design point. */
struct HostDemand
{
    double inputGBs = 0;  ///< read-pair stream to the accelerator
    double outputGBs = 0; ///< locations + CIGARs back to the host
};

/** Per-pair host traffic parameters. */
struct HostTrafficConfig
{
    u32 readLen = 150;
    double bitsPerBase = 2.0;      ///< 2-bit encoding (§7.4)
    double locationBytesPerPair = 8.0;
    double cigarBytesPerPair = 20.0; ///< ~20 B per pair (§7.4)

    /** Input bytes for one read pair. */
    double
    inputBytesPerPair() const
    {
        return 2.0 * readLen * bitsPerBase / 8.0;
    }

    double
    outputBytesPerPair() const
    {
        return locationBytesPerPair + cigarBytesPerPair;
    }
};

/** A host link generation (unidirectional usable bandwidth). */
struct HostLink
{
    std::string name;
    double gbPerSecPerDirection = 0;

    /** Full-duplex check: each direction has the full link budget. */
    bool
    sustains(const HostDemand &demand) const
    {
        return demand.inputGBs <= gbPerSecPerDirection &&
               demand.outputGBs <= gbPerSecPerDirection;
    }
};

/** Demand of a design running at @p mpairs million pairs per second. */
HostDemand hostDemand(double mpairs, const HostTrafficConfig &cfg = {});

/**
 * The PCIe generations the paper considers (x16 links, usable data
 * bandwidth after encoding overhead): Gen3 ~15.75 GB/s, Gen4 ~31.5 GB/s.
 */
std::vector<HostLink> pcieGenerations();

/**
 * Highest sustainable pair rate (MPair/s) on @p link given per-pair
 * traffic @p cfg — the inverse question a designer asks when the link,
 * not the memory, is the binding constraint.
 */
double maxMpairsOn(const HostLink &link, const HostTrafficConfig &cfg = {});

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_HOST_INTERFACE_HH
