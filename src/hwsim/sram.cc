#include "hwsim/sram.hh"

namespace gpx {
namespace hwsim {
// Header-only model; translation unit anchors the target.
} // namespace hwsim
} // namespace gpx
