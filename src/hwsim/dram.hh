/**
 * @file
 * Cycle-level DRAM channel model (the Ramulator-2.0 substitute).
 *
 * Each channel owns a request queue, per-bank row-buffer state and a
 * shared data bus. Scheduling is FR-FCFS-lite: the controller scans a
 * short window of the queue for a row hit before falling back to the
 * oldest request. Timing honours tRCD/tRP/tCL/tBL/tRC/tCCD; energy
 * counters follow the DRAMsim3 accounting (activate + read burst +
 * background).
 */

#ifndef GPX_HWSIM_DRAM_HH
#define GPX_HWSIM_DRAM_HH

#include <deque>
#include <vector>

#include "hwsim/mem_config.hh"
#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** One memory read request (writes are irrelevant to SeedMap queries). */
struct MemRequest
{
    u64 addr = 0;
    u32 bytes = 0;
    u64 tag = 0; ///< opaque caller cookie
};

/** A completed request. */
struct MemResponse
{
    u64 tag = 0;
    u64 finishCycle = 0;
};

/** Aggregated channel statistics. */
struct DramStats
{
    u64 requests = 0;
    u64 bursts = 0;
    u64 activations = 0;
    u64 rowHits = 0;
    u64 bytesRead = 0;
    u64 busBusyCycles = 0;

    /** Dynamic DRAM energy in nanojoules. */
    double
    dynamicEnergyNj(const MemoryConfig &cfg) const
    {
        return activations * cfg.actEnergyNj +
               bursts * cfg.readEnergyNjPerBurst;
    }
};

/** One DRAM channel. */
class DramChannel
{
  public:
    DramChannel(const MemoryConfig &cfg, u32 queue_depth = 16);

    /** True if the request queue has room this cycle. */
    bool canAccept() const { return queue_.size() < queueDepth_; }

    /** Enqueue a read; the request is split into bursts internally. */
    void push(const MemRequest &req);

    /** Advance one memory clock cycle. */
    void tick(u64 cycle);

    /** Responses completed at or before @p cycle (drained on return). */
    std::vector<MemResponse> drain(u64 cycle);

    const DramStats &stats() const { return stats_; }

    /** Outstanding requests (queued or in flight). */
    std::size_t inFlight() const { return queue_.size() + pending_.size(); }

    /** High-water mark of the request queue (per-channel FIFO sizing). */
    std::size_t maxQueueDepth() const { return maxQueue_; }

  private:
    struct Bank
    {
        i64 openRow = -1;
        u64 readyCycle = 0;      ///< bank free for a new column command
        u64 nextActivate = 0;    ///< tRC constraint
    };

    struct QueuedReq
    {
        MemRequest req;
        u32 burstsLeft;
        u64 firstBurstIssued = 0;
    };

    const MemoryConfig cfg_;
    u32 queueDepth_;
    std::deque<QueuedReq> queue_;
    std::vector<Bank> banks_;
    u64 busFree_ = 0;
    std::vector<MemResponse> pending_;
    DramStats stats_;
    std::size_t maxQueue_ = 0;
};

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_DRAM_HH
