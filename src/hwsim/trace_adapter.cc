#include "hwsim/trace_adapter.hh"

#include <ostream>
#include <sstream>
#include <string>

namespace gpx {
namespace hwsim {

namespace {

const char kMagic[] = "# gpx-stage-trace v1";

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

} // namespace

WorkloadProfile
RecordedRun::profile(u32 read_len, double chain_cells_per_fallback,
                     double align_cells_per_dp_pair) const
{
    return WorkloadProfile::fromStats(stats, read_len,
                                      chain_cells_per_fallback,
                                      align_cells_per_dp_pair,
                                      avgLocationsPerSeed);
}

void
writeTraceHeader(std::ostream &os, u32 table_bits)
{
    os << kMagic << '\n' << "# tableBits " << table_bits << '\n';
}

bool
loadRecordedRun(std::istream &is, RecordedRun *out, std::string *error)
{
    *out = RecordedRun{};
    std::string line;
    if (!std::getline(is, line) || line != kMagic)
        return fail(error, "not a gpx-stage-trace v1 file");

    bool haveTableBits = false;
    u64 totalLocs = 0;
    u64 totalSeeds = 0;
    u64 lineNo = 1;

    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream hdr(line);
            std::string hash, key;
            hdr >> hash >> key;
            if (key == "tableBits") {
                if (!(hdr >> out->tableBits) || out->tableBits == 0 ||
                    out->tableBits > 31)
                    return fail(error, "line " + std::to_string(lineNo) +
                                           ": bad tableBits");
                haveTableBits = true;
            }
            continue; // unknown comment keys are forward-compatible
        }
        if (line[0] != 'P')
            return fail(error, "line " + std::to_string(lineNo) +
                                   ": expected a P record");
        if (!haveTableBits)
            return fail(error,
                        "tableBits header must precede the records");

        std::istringstream rec(line.substr(1));
        PairTrace trace{};
        const u32 mask = (1u << out->tableBits) - 1;
        for (std::size_t s = 0; s < 6; ++s) {
            u64 hash = 0, count = 0;
            if (!(rec >> hash >> count))
                return fail(error, "line " + std::to_string(lineNo) +
                                       ": truncated seed stream");
            trace[s] = { static_cast<u32>(hash) & mask,
                         static_cast<u32>(count), 0 };
            totalLocs += count;
            ++totalSeeds;
        }
        u32 route = 0;
        u64 filterIters = 0, lightAligns = 0;
        if (!(rec >> route >> filterIters >> lightAligns))
            return fail(error, "line " + std::to_string(lineNo) +
                                   ": truncated record tail");

        genpair::PipelineStats &st = out->stats;
        ++st.pairsTotal;
        switch (static_cast<genpair::PairRoute>(route)) {
        case genpair::PairRoute::LightAligned:
            ++st.lightAligned;
            break;
        case genpair::PairRoute::LightFallback:
            ++st.lightAlignFallback;
            break;
        case genpair::PairRoute::SeedMiss:
            ++st.seedMissFallback;
            break;
        case genpair::PairRoute::PaMiss:
            ++st.paFilterFallback;
            break;
        default:
            return fail(error, "line " + std::to_string(lineNo) +
                                   ": bad route " +
                                   std::to_string(route));
        }
        st.query.filterIterations += filterIters;
        st.lightAlignsAttempted += lightAligns;
        out->traces.push_back(trace);
    }

    if (out->traces.empty())
        return fail(error, "trace holds no pair records");
    out->avgLocationsPerSeed =
        static_cast<double>(totalLocs) / static_cast<double>(totalSeeds);
    return true;
}

} // namespace hwsim
} // namespace gpx
