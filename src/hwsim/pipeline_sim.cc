#include "hwsim/pipeline_sim.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace gpx {
namespace hwsim {

namespace {

/** One busy/idle server (a PA or LA instance). */
struct Server
{
    u64 freeAt = 0;    ///< first cycle the server is idle again
    u64 busyCycles = 0;
    PairWork work;
    bool hasWork = false;
};

} // namespace

PipelineSimResult
GenPairXPipelineSim::run(const std::vector<PairWork> &workload) const
{
    PipelineSimResult res;
    res.pairs = workload.size();
    if (workload.empty())
        return res;
    gpx_assert(cfg_.paInstances > 0 && cfg_.laInstances > 0,
               "pipeline needs at least one instance per stage");

    // Source emission interval in cycles (fractional accumulator).
    const double cyclesPerPair =
        cfg_.clockGhz * 1e3 / std::max(1e-9, cfg_.nmslMpairs);
    const double laCyclesPerAlign =
        ModuleModels::lightAlignCycles(cfg_.readLen);

    Fifo<PairWork> buf1(cfg_.bufferDepth);
    Fifo<PairWork> buf2(cfg_.bufferDepth);
    std::vector<Server> pa(cfg_.paInstances);
    std::vector<Server> la(cfg_.laInstances);

    std::size_t nextEmit = 0;
    double emitCredit = 0;
    u64 completed = 0;
    u64 cycle = 0;
    const u64 limit = 400ull * 1000 * 1000;

    while (completed < workload.size()) {
        gpx_assert(cycle < limit, "pipeline simulation did not converge");

        // Source: the NMSL delivers pairs at its sustained rate unless
        // the first circular buffer backpressures it.
        emitCredit += 1.0;
        while (emitCredit >= cyclesPerPair && nextEmit < workload.size()) {
            if (!buf1.tryPush(workload[nextEmit])) {
                ++res.sourceStallCycles;
                break;
            }
            ++nextEmit;
            emitCredit -= cyclesPerPair;
        }
        if (emitCredit > cyclesPerPair * 4)
            emitCredit = cyclesPerPair * 4; // bounded credit accumulation

        // Paired-Adjacency Filtering instances.
        for (auto &srv : pa) {
            if (srv.hasWork && srv.freeAt <= cycle) {
                // Service complete: hand the pair to the LA buffer (or
                // to the sink for full-DP pairs that bypass the LA).
                if (srv.work.bypassLight || srv.work.lightAligns == 0) {
                    ++completed;
                    srv.hasWork = false;
                } else if (buf2.tryPush(srv.work)) {
                    srv.hasWork = false;
                }
                // else: blocked on buf2, retry next cycle.
            }
            if (!srv.hasWork && !buf1.empty()) {
                srv.work = buf1.pop();
                srv.hasWork = true;
                u64 service = std::max<u32>(1, srv.work.paIterations);
                srv.freeAt = cycle + service;
                srv.busyCycles += service;
            }
        }

        // Light Alignment instances.
        for (auto &srv : la) {
            if (srv.hasWork && srv.freeAt <= cycle) {
                ++completed;
                srv.hasWork = false;
            }
            if (!srv.hasWork && !buf2.empty()) {
                srv.work = buf2.pop();
                srv.hasWork = true;
                u64 service = static_cast<u64>(
                    std::max<u32>(1, srv.work.lightAligns) *
                    laCyclesPerAlign);
                srv.freeAt = cycle + service;
                srv.busyCycles += service;
            }
        }

        ++cycle;
    }

    res.cycles = cycle;
    double seconds = static_cast<double>(cycle) /
                     (cfg_.clockGhz * 1e9);
    res.mpairsPerSec = static_cast<double>(res.pairs) / seconds / 1e6;

    u64 paBusy = 0, laBusy = 0;
    for (const auto &srv : pa)
        paBusy += srv.busyCycles;
    for (const auto &srv : la)
        laBusy += srv.busyCycles;
    res.paUtilization = static_cast<double>(paBusy) /
                        (static_cast<double>(cycle) * cfg_.paInstances);
    res.laUtilization = static_cast<double>(laBusy) /
                        (static_cast<double>(cycle) * cfg_.laInstances);
    res.buf1MaxOccupancy = buf1.maxOccupancy();
    res.buf2MaxOccupancy = buf2.maxOccupancy();
    return res;
}

std::vector<PairWork>
GenPairXPipelineSim::synthesizeWorkload(const WorkloadProfile &profile,
                                        u64 pairs, u64 seed)
{
    util::Pcg32 rng(seed, 0x9A1B);
    std::vector<PairWork> out;
    out.reserve(pairs);
    double meanIter = std::max(1.0, profile.avgFilterIterationsPerPair);
    double meanAligns = std::max(0.1, profile.avgLightAlignsPerPair);
    double bypassFrac = profile.fullDpFrac();
    for (u64 i = 0; i < pairs; ++i) {
        PairWork w;
        // Exponential dispersion around the measured means.
        double u1 = std::max(1e-9, rng.uniform());
        double u2 = std::max(1e-9, rng.uniform());
        w.paIterations = static_cast<u32>(
            std::max(1.0, -meanIter * std::log(u1)));
        w.lightAligns = static_cast<u32>(
            std::max(1.0, std::round(-meanAligns * std::log(u2))));
        w.bypassLight = rng.chance(bypassFrac);
        out.push_back(w);
    }
    return out;
}

} // namespace hwsim
} // namespace gpx
