#include "hwsim/host_interface.hh"

#include <algorithm>

namespace gpx {
namespace hwsim {

HostDemand
hostDemand(double mpairs, const HostTrafficConfig &cfg)
{
    HostDemand d;
    d.inputGBs = mpairs * 1e6 * cfg.inputBytesPerPair() / 1e9;
    d.outputGBs = mpairs * 1e6 * cfg.outputBytesPerPair() / 1e9;
    return d;
}

std::vector<HostLink>
pcieGenerations()
{
    // x16 usable data rates: Gen3 8 GT/s * 16 lanes * 128b/130b minus
    // protocol overhead ~= 15.75 GB/s; each later generation doubles.
    return {
        { "PCIe Gen3 x16", 15.75 },
        { "PCIe Gen4 x16", 31.5 },
        { "PCIe Gen5 x16", 63.0 },
    };
}

double
maxMpairsOn(const HostLink &link, const HostTrafficConfig &cfg)
{
    const double inCap =
        link.gbPerSecPerDirection * 1e9 / cfg.inputBytesPerPair();
    const double outCap =
        link.gbPerSecPerDirection * 1e9 / cfg.outputBytesPerPair();
    return std::min(inCap, outCap) / 1e6;
}

} // namespace hwsim
} // namespace gpx
