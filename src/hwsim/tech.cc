#include "hwsim/tech.hh"

// Constants are defined inline in the header; this translation unit
// anchors the library target.
namespace gpx {
namespace hwsim {
} // namespace hwsim
} // namespace gpx
