/**
 * @file
 * End-to-end GenPairX + GenDP design roll-up (paper §7.2-§7.4).
 *
 * Consumes the NMSL simulation result and the measured workload profile,
 * sizes every compute module to the NMSL-sustained rate, sizes GenDP to
 * the residual MCUPS demand, and rolls up area/power (Table 3 + Table 4)
 * and end-to-end throughput (Table 5, Table 6, Fig. 11, Fig. 12b).
 */

#ifndef GPX_HWSIM_PIPELINE_MODEL_HH
#define GPX_HWSIM_PIPELINE_MODEL_HH

#include <string>
#include <vector>

#include "hwsim/baseline_models.hh"
#include "hwsim/gendp.hh"
#include "hwsim/module_models.hh"
#include "hwsim/nmsl.hh"
#include "hwsim/sram.hh"
#include "hwsim/tech.hh"
#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** One Table 4 row. */
struct CostRow
{
    std::string name;
    BlockCost cost;
};

/** A fully sized GenPairX + GenDP design. */
struct PipelineDesign
{
    double nmslMpairs = 0;        ///< sustained SeedMap Query rate
    std::vector<ModuleSpec> modules; ///< Table 3
    std::vector<CostRow> breakdown;  ///< Table 4 rows (GenPairX side)
    double chainMcups = 0;        ///< GenDP chain sizing
    double alignMcups = 0;        ///< GenDP align sizing
    u32 readLen = 150;

    BlockCost genPairXCost;       ///< sum of GenPairX rows
    BlockCost genDpCost;          ///< chain + align engines
    BlockCost totalCost;

    /** End-to-end pair rate of the balanced design (MPair/s). */
    double endToEndMpairs = 0;

    /** Mapping throughput in Mbp/s (pairs x 2 x readLen). */
    double
    throughputMbps() const
    {
        return endToEndMpairs * 2.0 * readLen;
    }

    /** As a Fig. 11 operating point. */
    SystemPoint
    asSystemPoint(const std::string &name) const
    {
        return { name, throughputMbps(), totalCost.areaMm2,
                 totalCost.powerMw / 1000.0 };
    }
};

/** Long-read operating characteristics (paper §4.7 / Fig. 11). */
struct LongReadWorkload
{
    double meanReadLen = 9569.0;
    double pseudoPairsPerRead = 62.0; ///< meanReadLen / 150 - 1
    double dpCellsPerRead = 3.0e6;    ///< banded DP over the read
};

/** The design calculator. */
class PipelineModel
{
  public:
    explicit PipelineModel(double clock_ghz = 2.0) : modules_(clock_ghz) {}

    /**
     * Size a balanced design: every module and the GenDP fallback are
     * provisioned for the NMSL-sustained rate under workload @p w.
     */
    PipelineDesign design(const NmslResult &nmsl, const NmslConfig &cfg,
                          const WorkloadProfile &w) const;

    /**
     * Throughput of a FIXED design under a different workload (the
     * Fig. 12b sweep): the bottleneck moves to GenDP once fallback
     * demand exceeds its provisioned MCUPS.
     */
    double throughputUnder(const PipelineDesign &design,
                           const WorkloadProfile &w) const;

    /**
     * Long-read throughput of a fixed design in Mbp/s (paper: roughly an
     * order of magnitude below short reads; DP alignment becomes the
     * bottleneck).
     */
    double longReadMbps(const PipelineDesign &design,
                        const LongReadWorkload &w) const;

    const ModuleModels &modules() const { return modules_; }

  private:
    ModuleModels modules_;
};

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_PIPELINE_MODEL_HH
