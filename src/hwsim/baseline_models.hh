/**
 * @file
 * Reported-constant models of the evaluated baseline systems (paper §6).
 *
 * GenCache, GenDP, BWA-MEM-GPU and the CPU mappers enter the end-to-end
 * comparison (Fig. 11, Table 5) through their published throughput, area
 * and power; the paper itself takes these numbers from the cited works
 * and from Table 2 hardware (scaled to 7 nm). We encode them the same
 * way: as a constants library the comparison harness consumes. The CPU
 * and GPU entries are back-derived from the paper's reported ratios and
 * its Table 2/5 absolutes (see EXPERIMENTS.md).
 */

#ifndef GPX_HWSIM_BASELINE_MODELS_HH
#define GPX_HWSIM_BASELINE_MODELS_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** End-to-end system operating point. */
struct SystemPoint
{
    std::string name;
    double throughputMbps = 0; ///< mapping throughput in Mbp/s
    double areaMm2 = 0;        ///< die area (7 nm-scaled where applicable)
    double powerW = 0;

    double
    mbpsPerMm2() const
    {
        return areaMm2 > 0 ? throughputMbps / areaMm2 : 0;
    }

    double
    mbpsPerW() const
    {
        return powerW > 0 ? throughputMbps / powerW : 0;
    }
};

/** Published/derived baseline operating points. */
struct BaselineModels
{
    /** Minimap2 on the Table 2 Xeon (RAPL power, 7 nm-scaled area). */
    static SystemPoint mm2Cpu();

    /** GenPair + Minimap2 on the same CPU (paper: 1.72x MM2). */
    static SystemPoint genPairMm2Cpu();

    /** BWA-MEM end-to-end on an NVIDIA A100 (reported results). */
    static SystemPoint bwaMemGpu();

    /** GenCache ASIC, single-end 100 bp reads (paper Table 5). */
    static SystemPoint genCache();

    /** GenDP ASIC running the Minimap2 pipeline (paper Table 5). */
    static SystemPoint genDp();

    /** GenPairX + GenDP as reported in paper Table 5 (reference). */
    static SystemPoint genPairXReported();

    /** All baselines, in Fig. 11 order. */
    static std::vector<SystemPoint> all();
};

/** GV100 SeedMap-query point for the Fig. 9 NMSL comparison. */
struct NmslComparisonPoints
{
    /** GPU (Quadro GV100) SeedMap query implementation: the paper
     *  reports NMSL = 2.12x GPU throughput, 16.1x per-area, 26.8x
     *  per-power, with NMSL sustaining 192.7 MPair/s. */
    static SystemPoint gpuQuery();
    /** CPU (Table 2 Xeon, DDR4) query implementation: 4.58x below NMSL. */
    static SystemPoint cpuQuery();
    /** NMSL as reported by the paper (reference for our simulator). */
    static SystemPoint nmslReported();
};

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_BASELINE_MODELS_HH
