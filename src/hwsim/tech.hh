/**
 * @file
 * Technology scaling and synthesized-module cost constants.
 *
 * The paper synthesizes the GenPairX blocks in a commercial 28 nm flow,
 * models SRAM with CACTI 7.0 at 22 nm, and scales everything to 7 nm for
 * a fair comparison with GenDP, using the area factor 1.91x and power
 * factor 3.5x from Stiller et al. (Table 4, footnotes a/b). This module
 * encodes those per-instance 28 nm costs and the scaling so that the
 * Table 4 roll-up can be regenerated (and re-targeted to other nodes).
 */

#ifndef GPX_HWSIM_TECH_HH
#define GPX_HWSIM_TECH_HH

#include <string>

#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** Area/power cost of one hardware block instance. */
struct BlockCost
{
    double areaMm2 = 0;
    double powerMw = 0;

    BlockCost
    operator*(double n) const
    {
        return { areaMm2 * n, powerMw * n };
    }

    BlockCost
    operator+(const BlockCost &o) const
    {
        return { areaMm2 + o.areaMm2, powerMw + o.powerMw };
    }
};

/** Process scaling model (paper: Stiller et al. factors). */
class TechModel
{
  public:
    /** Scaling from the synthesis node to the reporting node (7 nm). */
    static constexpr double kAreaScale = 1.91; ///< divide area by this
    static constexpr double kPowerScale = 3.5; ///< divide power by this

    /** Scale a 28/22 nm cost down to 7 nm. */
    static BlockCost
    to7nm(const BlockCost &c)
    {
        return { c.areaMm2 / kAreaScale, c.powerMw / kPowerScale };
    }
};

/**
 * Per-instance synthesized costs of the GenPairX compute blocks at the
 * 28 nm synthesis corner (2.0 GHz), calibrated so the 7 nm-scaled totals
 * reproduce paper Table 4 at the Table 3 instance counts.
 */
struct SynthesizedBlocks
{
    /** Partitioned Seeding module (six pipelined xxHash units). */
    static BlockCost
    partitionedSeeding()
    {
        return { 0.016 * TechModel::kAreaScale,
                 82.4 * TechModel::kPowerScale };
    }

    /** One Paired-Adjacency Filtering instance (Table 4 lists 3). */
    static BlockCost
    pairedAdjacencyFilter()
    {
        return { 0.027 / 3.0 * TechModel::kAreaScale,
                 15.6 / 3.0 * TechModel::kPowerScale };
    }

    /** One Light Alignment instance (Table 4 lists 174). */
    static BlockCost
    lightAlignment()
    {
        return { 0.53 / 174.0 * TechModel::kAreaScale,
                 453.6 / 174.0 * TechModel::kPowerScale };
    }

    /** HBM PHY (from existing chips; already at the reporting node). */
    static BlockCost hbmPhy() { return { 60.0, 320.0 }; }

    /** AXI-Stream interconnect to GenDP (paper §7.4). */
    static BlockCost interconnect() { return { 1.0, 50.0 }; }

    /** Inter-accelerator batching FIFOs (paper §7.4, 10K-read batch). */
    static BlockCost batchFifos() { return { 1.3, 500.0 }; }
};

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_TECH_HH
