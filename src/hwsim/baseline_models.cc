#include "hwsim/baseline_models.hh"

namespace gpx {
namespace hwsim {

// Derivation of the CPU/GPU points (see EXPERIMENTS.md): the paper gives
// GenPairX+GenDP = 57,810 Mbp/s, 381.1 mm^2, 209.0 W (Table 5), and the
// ratios 958x / 1575x vs MM2, 557x / 911x vs GenPair+MM2 and 3053x /
// 1685x vs BWA-MEM-GPU (Fig. 11 text). Fixing plausible CPU RAPL power
// (110 W) and A100 die area (826 mm^2) pins the remaining values.

SystemPoint
BaselineModels::mm2Cpu()
{
    return { "MM2 (CPU)", 19.3, 122.0, 110.0 };
}

SystemPoint
BaselineModels::genPairMm2Cpu()
{
    return { "GenPair+MM2 (CPU)", 33.2, 122.0, 109.3 };
}

SystemPoint
BaselineModels::bwaMemGpu()
{
    return { "BWA-MEM (GPU)", 41.0, 826.0, 250.0 };
}

SystemPoint
BaselineModels::genCache()
{
    return { "GenCache", 2172.0, 33.7, 11.2 };
}

SystemPoint
BaselineModels::genDp()
{
    return { "GenDP", 24300.0, 315.8, 209.1 };
}

SystemPoint
BaselineModels::genPairXReported()
{
    return { "GenPairX+GenDP (paper)", 57810.0, 381.1, 209.0 };
}

std::vector<SystemPoint>
BaselineModels::all()
{
    return { mm2Cpu(), genPairMm2Cpu(), genCache(), genDp(), bwaMemGpu() };
}

SystemPoint
NmslComparisonPoints::nmslReported()
{
    // 192.7 MPair/s; NMSL area/power are the HBM-side slice of Table 4.
    return { "NMSL (paper)", 192.7, 66.8, 1.2 };
}

SystemPoint
NmslComparisonPoints::gpuQuery()
{
    // NMSL = 2.12x GPU throughput; GV100: 815 mm^2 (Table 2).
    // Per-area 16.1x and per-power 26.8x fix the effective power.
    double tput = 192.7 / 2.12;
    return { "GPU (GV100)", tput, 815.0, 250.0 };
}

SystemPoint
NmslComparisonPoints::cpuQuery()
{
    // NMSL = 4.58x CPU throughput (multi-threaded, DDR4 6 channels).
    double tput = 192.7 / 4.58;
    return { "CPU (Xeon)", tput, 300.0, 110.0 };
}

} // namespace hwsim
} // namespace gpx
