/**
 * @file
 * CACTI-lite SRAM cost model.
 *
 * The paper models SRAM with CACTI 7.0 at 22 nm and scales to 7 nm
 * (Table 4 footnote b). Two activity profiles matter: the centralized
 * location buffer (large, mostly idle banks -> leakage dominated) and
 * the small per-channel FIFOs (accessed nearly every cycle -> dynamic
 * dominated). The constants are calibrated against the paper's two data
 * points: 11.74 MB buffer = 6.13 mm^2 / 6.09 mW and 190 KB of FIFOs =
 * 0.091 mm^2 / 3.36 mW (both at 7 nm).
 */

#ifndef GPX_HWSIM_SRAM_HH
#define GPX_HWSIM_SRAM_HH

#include "hwsim/tech.hh"
#include "util/types.hh"

namespace gpx {
namespace hwsim {

/** SRAM macro cost estimation. */
class SramModel
{
  public:
    /** Activity profile of a macro. */
    enum class Profile
    {
        Buffer, ///< large, low switching activity
        Fifo,   ///< small, near-per-cycle activity
    };

    /** Area at 7 nm for a macro of @p bytes. */
    static double
    areaMm2(u64 bytes, Profile)
    {
        // ~0.522 mm^2/MB at 7 nm (11.74 MB -> 6.13 mm^2).
        return kAreaPerMb * static_cast<double>(bytes) / kMb;
    }

    /** Power at 7 nm in mW. */
    static double
    powerMw(u64 bytes, Profile profile)
    {
        double mb = static_cast<double>(bytes) / kMb;
        switch (profile) {
          case Profile::Buffer:
            return kBufferMwPerMb * mb; // leakage dominated
          case Profile::Fifo:
            return kFifoMwPerMb * mb; // toggling every cycle
        }
        return 0;
    }

    static BlockCost
    cost(u64 bytes, Profile profile)
    {
        return { areaMm2(bytes, profile), powerMw(bytes, profile) };
    }

  private:
    static constexpr double kMb = 1024.0 * 1024.0;
    static constexpr double kAreaPerMb = 6.13 / 11.74;
    static constexpr double kBufferMwPerMb = 6.09 / 11.74;
    static constexpr double kFifoMwPerMb = 3.36 / (190.0 / 1024.0);
};

} // namespace hwsim
} // namespace gpx

#endif // GPX_HWSIM_SRAM_HH
