/**
 * @file
 * ServeClient: the reference gpx-serve-proto v1 client, shared by the
 * gpx_client tool, the end-to-end serve tests and the latency bench.
 * One instance owns one connection; calls are synchronous (send the
 * request frame, block for the matching reply) and must come from one
 * thread at a time — open more clients for concurrency, which is also
 * how the protocol is meant to be scaled out.
 */

#ifndef GPX_SERVE_CLIENT_HH
#define GPX_SERVE_CLIENT_HH

#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "util/socket.hh"

namespace gpx {
namespace serve {

/** Outcome of one request round trip. */
struct ClientStatus
{
    /** True iff the expected reply frame arrived. */
    bool ok = false;
    /**
     * Set when the server answered with an ERROR frame; transportError
     * is set instead when the failure was local (I/O, bad framing).
     */
    std::optional<ErrorBody> errorFrame;
    std::string transportError;

    /** Human-readable failure summary (empty when ok). */
    std::string describe() const;
};

/**
 * Client-side retry discipline for OVERLOADED rejections: capped
 * exponential backoff seeded by the server's retry_after_ms hint.
 * maxRetries = 0 (the default) preserves fail-fast semantics.
 */
struct RetryPolicy
{
    u32 maxRetries = 0;   ///< re-sends after the first attempt
    u32 backoffMs = 50;   ///< first backoff step
    u32 maxBackoffMs = 2000; ///< backoff cap (doubling stops here)
};

/** Synchronous gpx-serve-proto v1 connection. */
class ServeClient
{
  public:
    /** Connect over a Unix-domain socket and run the HELLO exchange. */
    static std::optional<ServeClient>
    connectUnix(const std::string &path, std::string *error);

    /** Connect over TCP (IPv4) and run the HELLO exchange. */
    static std::optional<ServeClient>
    connectTcp(const std::string &host, u16 port, std::string *error);

    /** Mount names announced by the server's HELLO reply. */
    const std::vector<std::string> &mounts() const { return mounts_; }

    /** Install the OVERLOADED retry policy for subsequent mapBatch
     *  calls (default: no retries). */
    void setRetryPolicy(const RetryPolicy &policy) { retry_ = policy; }

    /** OVERLOADED rejections absorbed by retries so far. */
    u64 retriesPerformed() const { return retriesPerformed_; }

    /**
     * Map one framed FASTQ pair batch on mount @p ref_name (empty =
     * the sole mount). On success @p reply holds the SAM records (and
     * stats JSON when @p want_stats). The returned status
     * distinguishes server-side rejections (errorFrame — the
     * connection is still usable for codes 4/5) from transport
     * failures (connection dead).
     */
    ClientStatus mapBatch(const std::string &ref_name,
                          const std::string &r1_fastq,
                          const std::string &r2_fastq, bool want_stats,
                          MapReplyBody *reply);

    /** Fetch the SAM header text of mount @p ref_name. */
    ClientStatus fetchHeader(const std::string &ref_name,
                             std::string *sam_header);

    /** Fetch the server's aggregate stats JSON. */
    ClientStatus fetchStats(std::string *json);

    /** Ask the server to drain and exit. */
    ClientStatus shutdownServer();

    /**
     * Ask the server to hot-swap mount @p ref_name's index (empty =
     * the sole mount). Failure (kErrRefreshFailed) leaves the old
     * epoch serving and the connection usable.
     */
    ClientStatus refreshMount(const std::string &ref_name);

  private:
    explicit ServeClient(util::Socket sock) : sock_(std::move(sock)) {}

    bool helloExchange(std::string *error);
    /** Read the next frame; decodes an ERROR frame into @p status. */
    bool readReply(Frame *frame, u8 expected_type, ClientStatus *status);

    ClientStatus mapBatchOnce(const std::string &ref_name,
                              const std::string &r1_fastq,
                              const std::string &r2_fastq,
                              bool want_stats, MapReplyBody *reply);

    util::Socket sock_;
    std::vector<std::string> mounts_;
    u32 nextRequestId_ = 1;
    RetryPolicy retry_;
    u64 retriesPerformed_ = 0;
};

} // namespace serve
} // namespace gpx

#endif // GPX_SERVE_CLIENT_HH
