/**
 * @file
 * ServeServer: the resident mapping daemon behind gpx_serve.
 *
 * The cold-start economics of the batch tools are wrong for service
 * traffic: every gpx_map run pays reference load + index open + pool
 * spawn before the first pair maps. The server pays them once — v2
 * SeedMap shards stay mounted behind a SeedMapView on kernel-shared
 * mmap pages, one persistent MapperEngine worker pool per mount stays
 * warm — and then serves any number of concurrent connections speaking
 * gpx-serve-proto v1 (protocol.hh, docs/serve_protocol.md).
 *
 * Concurrency shape: one accept loop, one handler thread per
 * connection, and a bounded admission gate in front of the mapping
 * pool. A connection thread parses its request, waits for an admission
 * slot (backpressure: when the queue is full the handler blocks, the
 * client's socket fills, and the client's send blocks — no unbounded
 * buffering anywhere), then submits the batch to the mount's
 * ParallelMapper through the thread-safe mapAllShared() entry point.
 * Requests on one connection are handled strictly in order; requests
 * on different connections share the pool in admission order. Mapping
 * itself is bit-identical to gpx_map over the same pairs — the golden
 * corpus digest is pinned by tests/test_serve.cc.
 *
 * Lifecycle: requestShutdown() (SIGTERM via the tool, a SHUTDOWN
 * frame, or a test) stops the accept loop, wakes idle connections,
 * lets in-flight requests finish, and run() returns with the aggregate
 * counters still queryable.
 */

#ifndef GPX_SERVE_SERVER_HH
#define GPX_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "genpair/driver.hh"
#include "genpair/seedmap_io.hh"
#include "genpair/streaming.hh"
#include "serve/protocol.hh"
#include "util/socket.hh"

namespace gpx {
namespace serve {

/** One reference + index pair the server mounts at start-up. */
struct MountSpec
{
    /** Routing key for MapRequestBody::refName; must be unique. */
    std::string name;
    /** Non-owning; must outlive the server. */
    const genomics::Reference *ref = nullptr;
    /** View over the shards (mmap image or owning map outlives us). */
    genpair::SeedMapView view;
    /**
     * Path of the v2 image backing @p view, when there is one. A
     * non-empty path makes the mount hot-swappable: REFRESH/SIGHUP
     * re-opens this path, validates it, and publishes a new epoch.
     * Mounts built in memory (no file) refuse refresh requests.
     */
    std::string indexPath;
};

/** Server configuration. */
struct ServeConfig
{
    /** Unix-domain socket path; empty = TCP on @p port. */
    std::string socketPath;
    /** TCP port on 127.0.0.1 (0 = kernel-assigned) when no path. */
    u16 port = 0;
    /** Worker threads per mount's pool (0 = hardware concurrency). */
    u32 threads = 0;
    /** Admission slots: requests mapping or waiting to map. */
    u32 admissionSlots = 4;
    /** Per-frame byte ceiling. */
    u32 maxFrameBytes = kDefaultMaxFrameBytes;
    /** Per-request pair-count ceiling. */
    u32 maxPairsPerRequest = kDefaultMaxPairsPerRequest;
    /** Parser threads of each request's ingest spine (>= 1). */
    u32 ioThreads = 1;
    /** Read pairs per streaming chunk of a request's spine run. */
    u32 chunkPairs = 1024;
    /**
     * Close a connection with no traffic for this long (0 = never).
     * The idle reaper: an abandoned peer stops pinning its handler
     * thread; the close is counted in STATS (idle_closed).
     */
    u32 idleTimeoutMs = 0;
    /**
     * Monotonic budget for reading one frame once its first byte has
     * arrived, and the SO_SNDTIMEO bound on replies (0 = none). A
     * slow-loris peer gets ERROR{DEADLINE} and a close instead of a
     * pinned handler thread.
     */
    u32 connTimeoutMs = 0;
    /**
     * Bounded admission wait (0 = wait forever, pre-PR8 semantics).
     * A request that cannot get a mapping slot within this budget is
     * shed with ERROR{OVERLOADED, retry_after_ms} — explicit load
     * feedback instead of indefinite TCP backpressure.
     */
    u32 queueTimeoutMs = 0;
    /** retry_after_ms hint attached to OVERLOADED rejections. */
    u32 retryAfterMs = 100;
    genpair::DriverConfig driver; ///< threads field is ignored
};

/** Aggregate serving counters (exposed as the STATS JSON). */
struct ServeCounters
{
    u64 connectionsAccepted = 0;
    u64 requestsServed = 0;   ///< MAP requests answered with MAP_REPLY
    u64 requestsRejected = 0; ///< MAP requests answered with ERROR
    u64 pairsMapped = 0;
    u64 samBytesSent = 0;
    u64 admissionWaits = 0; ///< requests that found the gate full
    u64 shedded = 0;          ///< OVERLOADED rejections (queue timeout)
    u64 deadlineExpired = 0;  ///< connections closed mid-frame (DEADLINE)
    u64 idleClosed = 0;       ///< connections reaped for idleness
    u64 ioFaults = 0;         ///< server-side I/O failures serving requests
    u64 indexSwaps = 0;       ///< epochs published by REFRESH/SIGHUP
    u64 swapsRejected = 0;    ///< refresh attempts that failed validation
    double mapSeconds = 0;  ///< summed pool occupancy of MAP requests
    /** Summed spine stalls across requests: time the mapping stage
     *  waited for parsed input vs for emission backpressure. */
    double readerStallSeconds = 0;
    double writerStallSeconds = 0;
};

/** The resident mapping daemon. */
class ServeServer
{
  public:
    /**
     * Mounts every spec (building one persistent mapper pool per
     * mount) but does not open the socket yet.
     */
    ServeServer(std::vector<MountSpec> mounts, const ServeConfig &config);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /**
     * Bind the socket and start the accept loop on a background
     * thread. Returns false (with a diagnostic) if the socket cannot
     * be opened. After success, boundPort() reports the TCP port when
     * config.port was 0.
     */
    bool start(std::string *error);

    /** Block until shutdown has been requested and every connection
     *  handler has drained. */
    void waitUntilDrained();

    /**
     * Begin graceful shutdown from any thread (signal-safe enough for
     * a self-pipe pattern; the tool calls it from its signal watcher):
     * stop accepting, wake idle connections, let in-flight requests
     * complete. Idempotent.
     */
    void requestShutdown();

    u16 boundPort() const { return boundPort_; }

    /** Snapshot of the aggregate serving counters. */
    ServeCounters counters() const;

    /**
     * Aggregate stats JSON: server counters plus the merged
     * PipelineStats of every mount (the --stats-json / STATS frame
     * payload).
     */
    std::string statsJson() const;

    /** Mount names in mount order (HELLO reply payload). */
    std::vector<std::string> mountNames() const;

    /**
     * Hot-swap @p ref_name's index (empty = the sole mount): re-open
     * the mount's indexPath, validate the image end to end (checksums,
     * structure, SIGBUS-guarded), and only then atomically publish it
     * as a new epoch. In-flight requests keep the epoch they started
     * on; the old image unmaps when its last request drains. On any
     * failure — no indexPath, unreadable/corrupt candidate — the old
     * epoch keeps serving and this returns false with a diagnostic.
     * Thread-safe (REFRESH frames and SIGHUP may race; last publish
     * wins).
     */
    bool refreshMount(const std::string &ref_name, std::string *error);

    /**
     * Refresh every file-backed mount (the SIGHUP handler's path).
     * Returns how many mounts published a new epoch; failures warn
     * and leave their old epoch serving.
     */
    u32 refreshAllMounts();

  private:
    /**
     * One published generation of a mount's index: the image (for
     * refreshed epochs; the initial epoch borrows MountSpec::view),
     * its warm mapper pool, and the streaming spine over it. Request
     * handlers pin the epoch with a shared_ptr for the duration of a
     * request, so an old epoch survives — mapped and serving — until
     * its last in-flight request completes, then unmaps in the
     * destructor. No locks are held while mapping.
     */
    struct MountEpoch
    {
        u64 epochId = 0;
        /** Owns the mmap for refreshed epochs; nullopt initially. */
        std::optional<genpair::SeedMapImage> image;
        std::unique_ptr<genpair::ParallelMapper> mapper;
        /** Borrowed-pool streaming spine over `mapper`; tryRun() is
         *  safe to call from any number of handler threads at once. */
        std::unique_ptr<genpair::StreamingMapper> spine;
    };

    struct Mount
    {
        std::string name;
        const genomics::Reference *ref;
        std::string indexPath; ///< empty = not hot-swappable
        std::string samHeader;
        /** Current epoch; guarded by epochMu_ (swap on refresh). */
        std::shared_ptr<MountEpoch> epoch;
        /** Merged stats of every request served by this mount. */
        genpair::PipelineStats stats;
    };

    /** Bounded admission gate (see class comment). */
    class AdmissionGate
    {
      public:
        explicit AdmissionGate(u32 slots) : slots_(slots ? slots : 1) {}

        enum class Outcome
        {
            kAcquired,
            kTimedOut, ///< bounded wait expired (shed the request)
            kDraining, ///< server is shutting down
        };

        /**
         * Wait for a slot: forever when @p timeout_ms is 0 (TCP
         * backpressure, the pre-shedding discipline), else at most
         * @p timeout_ms before reporting kTimedOut.
         */
        Outcome acquireFor(u32 timeout_ms, bool *waited,
                           const std::atomic<bool> &draining);
        void release();
        /** Wake all waiters (shutdown path). */
        void wakeAll();

      private:
        std::mutex mu_;
        std::condition_variable freed_;
        u32 slots_;
        u32 inFlight_ = 0;
    };

    /** Build a warm epoch (pool + spine) over @p view. */
    std::shared_ptr<MountEpoch>
    buildEpoch(const genomics::Reference &ref,
               const genpair::SeedMapView &view) const;

    void acceptLoop();
    void handleConnection(util::Socket sock);
    Mount *findMount(const std::string &refName);
    /** The epoch new requests on @p mount should pin. */
    std::shared_ptr<MountEpoch> currentEpoch(Mount *mount) const;
    /** Serve one MAP request; false closes the connection. */
    bool handleMapRequest(const util::Socket &sock,
                          const std::vector<u8> &payload);
    bool sendError(const util::Socket &sock, u32 request_id, u16 code,
                   const std::string &message, u32 retry_after_ms = 0);

    ServeConfig config_;
    std::vector<Mount> mounts_;
    AdmissionGate gate_;

    util::Socket listener_;
    u16 boundPort_ = 0;
    std::thread acceptThread_;
    std::atomic<bool> draining_{ false };
    bool started_ = false;

    mutable std::mutex connMu_;
    std::condition_variable connDone_;
    std::vector<std::thread> connThreads_;
    u32 liveConnections_ = 0;
    /** Raw fds of live connections, for shutdown wake-up. */
    std::vector<int> liveFds_;

    mutable std::mutex statsMu_;
    ServeCounters counters_;

    /** Guards every Mount::epoch pointer (publish and pin). */
    mutable std::mutex epochMu_;
};

} // namespace serve
} // namespace gpx

#endif // GPX_SERVE_SERVER_HH
