#include "serve/server.hh"

#include <algorithm>
#include <sstream>
#include <sys/socket.h>
#include <utility>

#include "genomics/fasta.hh"
#include "genomics/sam.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace gpx {
namespace serve {

// --- AdmissionGate ---------------------------------------------------

ServeServer::AdmissionGate::Outcome
ServeServer::AdmissionGate::acquireFor(u32 timeout_ms, bool *waited,
                                       const std::atomic<bool> &draining)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (waited != nullptr)
        *waited = inFlight_ >= slots_;
    auto freeOrDraining = [&] {
        return inFlight_ < slots_ ||
               draining.load(std::memory_order_relaxed);
    };
    if (timeout_ms == 0) {
        // Unbounded wait: backpressure propagates through TCP (the
        // pre-shedding discipline, still the default).
        freed_.wait(lock, freeOrDraining);
    } else if (!freed_.wait_for(lock,
                                std::chrono::milliseconds(timeout_ms),
                                freeOrDraining)) {
        return Outcome::kTimedOut;
    }
    if (draining.load(std::memory_order_relaxed))
        return Outcome::kDraining;
    ++inFlight_;
    return Outcome::kAcquired;
}

void
ServeServer::AdmissionGate::release()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        gpx_assert(inFlight_ > 0, "admission release without acquire");
        --inFlight_;
    }
    freed_.notify_one();
}

void
ServeServer::AdmissionGate::wakeAll()
{
    freed_.notify_all();
}

// --- ServeServer -----------------------------------------------------

std::shared_ptr<ServeServer::MountEpoch>
ServeServer::buildEpoch(const genomics::Reference &ref,
                        const genpair::SeedMapView &view) const
{
    auto epoch = std::make_shared<MountEpoch>();
    genpair::DriverConfig driver = config_.driver;
    driver.threads = config_.threads;
    epoch->mapper =
        std::make_unique<genpair::ParallelMapper>(ref, view, driver);
    epoch->spine = std::make_unique<genpair::StreamingMapper>(
        *epoch->mapper, config_.chunkPairs, config_.ioThreads);
    return epoch;
}

ServeServer::ServeServer(std::vector<MountSpec> mounts,
                         const ServeConfig &config)
    : config_(config), gate_(config.admissionSlots)
{
    gpx_assert(!mounts.empty(), "ServeServer needs at least one mount");
    mounts_.reserve(mounts.size());
    for (auto &spec : mounts) {
        gpx_assert(spec.ref != nullptr, "mount needs a reference");
        Mount m;
        m.name = spec.name;
        m.ref = spec.ref;
        m.indexPath = spec.indexPath;
        m.epoch = buildEpoch(*spec.ref, spec.view);
        // The SAM header is a pure function of the mount's reference;
        // render it once so every HEADER request is a memcpy.
        std::ostringstream os;
        genomics::SamWriter sam(os, *spec.ref);
        sam.writeHeader();
        m.samHeader = os.str();
        mounts_.push_back(std::move(m));
    }
    for (std::size_t i = 0; i < mounts_.size(); ++i)
        for (std::size_t j = i + 1; j < mounts_.size(); ++j)
            gpx_assert(mounts_[i].name != mounts_[j].name,
                       "duplicate mount name: ", mounts_[i].name);
}

ServeServer::~ServeServer()
{
    requestShutdown();
    waitUntilDrained();
}

bool
ServeServer::start(std::string *error)
{
    gpx_assert(!started_, "ServeServer::start called twice");
    std::optional<util::Socket> listener;
    if (!config_.socketPath.empty())
        listener = util::listenUnix(config_.socketPath, error);
    else
        listener = util::listenTcp(config_.port, error, &boundPort_);
    if (!listener)
        return false;
    listener_ = std::move(*listener);
    started_ = true;
    acceptThread_ = std::thread([this]() { acceptLoop(); });
    return true;
}

void
ServeServer::waitUntilDrained()
{
    if (!started_)
        return;
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::thread> handlers;
    {
        std::unique_lock<std::mutex> lock(connMu_);
        connDone_.wait(lock, [&] { return liveConnections_ == 0; });
        handlers.swap(connThreads_);
    }
    for (auto &t : handlers)
        t.join();
}

void
ServeServer::requestShutdown()
{
    draining_.store(true, std::memory_order_relaxed);
    // Wake the accept loop (accept() fails once the listener is shut
    // down) and every idle connection (blocked reads return EOF).
    listener_.shutdownBoth();
    gate_.wakeAll();
    std::lock_guard<std::mutex> lock(connMu_);
    for (int fd : liveFds_)
        ::shutdown(fd, SHUT_RD);
}

ServeCounters
ServeServer::counters() const
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return counters_;
}

std::vector<std::string>
ServeServer::mountNames() const
{
    std::vector<std::string> names;
    names.reserve(mounts_.size());
    for (const auto &m : mounts_)
        names.push_back(m.name);
    return names;
}

std::string
ServeServer::statsJson() const
{
    std::lock_guard<std::mutex> lock(statsMu_);
    std::ostringstream os;
    os << "{\n\"server\": {\n"
       << "  \"simd\": {\"backend\": \""
       << util::simdBackendName(util::activeSimdBackend())
       << "\", \"reason\": \"" << util::simdBackendReason() << "\"},\n"
       << "  \"connections_accepted\": "
       << counters_.connectionsAccepted << ",\n"
       << "  \"requests_served\": " << counters_.requestsServed << ",\n"
       << "  \"requests_rejected\": " << counters_.requestsRejected
       << ",\n"
       << "  \"pairs_mapped\": " << counters_.pairsMapped << ",\n"
       << "  \"sam_bytes_sent\": " << counters_.samBytesSent << ",\n"
       << "  \"admission_waits\": " << counters_.admissionWaits << ",\n"
       << "  \"shedded\": " << counters_.shedded << ",\n"
       << "  \"deadline_expired\": " << counters_.deadlineExpired
       << ",\n"
       << "  \"idle_closed\": " << counters_.idleClosed << ",\n"
       << "  \"io_faults\": " << counters_.ioFaults << ",\n"
       << "  \"index_swaps\": " << counters_.indexSwaps << ",\n"
       << "  \"swaps_rejected\": " << counters_.swapsRejected << ",\n"
       << "  \"map_seconds\": " << counters_.mapSeconds << ",\n"
       << "  \"reader_stall_seconds\": " << counters_.readerStallSeconds
       << ",\n"
       << "  \"writer_stall_seconds\": " << counters_.writerStallSeconds
       << "\n},\n"
       << "\"mounts\": {\n";
    for (std::size_t i = 0; i < mounts_.size(); ++i) {
        os << "\"" << mounts_[i].name << "\": ";
        mounts_[i].stats.writeJson(os);
        if (i + 1 < mounts_.size())
            os << ",";
        os << "\n";
    }
    os << "}\n}\n";
    return os.str();
}

void
ServeServer::acceptLoop()
{
    for (;;) {
        auto conn = util::acceptOne(listener_, nullptr);
        if (!conn) {
            if (draining_.load(std::memory_order_relaxed))
                return;
            // Transient accept failure (e.g. the peer aborted inside
            // the backlog); keep serving.
            continue;
        }
        std::lock_guard<std::mutex> lock(connMu_);
        if (draining_.load(std::memory_order_relaxed))
            return; // drop the late arrival; its socket closes here
        ++liveConnections_;
        util::Socket sock = std::move(*conn);
        connThreads_.emplace_back(
            [this, s = std::move(sock)]() mutable {
                handleConnection(std::move(s));
            });
        {
            std::lock_guard<std::mutex> slock(statsMu_);
            ++counters_.connectionsAccepted;
        }
    }
}

ServeServer::Mount *
ServeServer::findMount(const std::string &refName)
{
    if (refName.empty())
        return mounts_.size() == 1 ? &mounts_[0] : nullptr;
    for (auto &m : mounts_)
        if (m.name == refName)
            return &m;
    return nullptr;
}

std::shared_ptr<ServeServer::MountEpoch>
ServeServer::currentEpoch(Mount *mount) const
{
    std::lock_guard<std::mutex> lock(epochMu_);
    return mount->epoch;
}

bool
ServeServer::refreshMount(const std::string &ref_name,
                          std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        std::lock_guard<std::mutex> lock(statsMu_);
        ++counters_.swapsRejected;
        return false;
    };
    Mount *mount = findMount(ref_name);
    if (mount == nullptr)
        return fail("no mount named '" + ref_name + "'");
    if (mount->indexPath.empty())
        return fail("mount '" + mount->name +
                    "' is not backed by an image file (built in "
                    "memory); nothing to refresh");

    // Validate the candidate end to end — open, checksum every shard,
    // structural checks, all SIGBUS-guarded — *before* anything is
    // published. A corrupt or truncated candidate leaves the serving
    // epoch untouched.
    std::string openError;
    auto image = genpair::SeedMapImage::open(
        mount->indexPath, genpair::SeedMapOpenOptions{}, &openError);
    if (!image)
        return fail("refresh of '" + mount->name + "' rejected: " +
                    openError);

    auto epoch = buildEpoch(*mount->ref, image->view());
    epoch->image = std::move(*image);

    {
        std::lock_guard<std::mutex> lock(epochMu_);
        epoch->epochId = mount->epoch->epochId + 1;
        // Atomic publish: new requests pin the new epoch; requests
        // already in flight finish on the epoch they pinned, and the
        // old image unmaps when the last of them releases its pin.
        mount->epoch = std::move(epoch);
    }
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++counters_.indexSwaps;
    }
    return true;
}

u32
ServeServer::refreshAllMounts()
{
    u32 swapped = 0;
    for (auto &m : mounts_) {
        if (m.indexPath.empty())
            continue;
        std::string error;
        if (refreshMount(m.name, &error))
            ++swapped;
        else
            gpx_warn("mount '", m.name, "': ", error);
    }
    return swapped;
}

bool
ServeServer::sendError(const util::Socket &sock, u32 request_id,
                       u16 code, const std::string &message,
                       u32 retry_after_ms)
{
    ErrorBody body;
    body.requestId = request_id;
    body.code = code;
    body.message = message;
    body.retryAfterMs = retry_after_ms;
    return writeFrame(sock, kErrorReply, encodeError(body));
}

bool
ServeServer::handleMapRequest(const util::Socket &sock,
                              const std::vector<u8> &payload)
{
    MapRequestBody req;
    if (!decodeMapRequest(payload, &req)) {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++counters_.requestsRejected;
        sendError(sock, 0, kErrBadFrame, "undecodable MAP request");
        return false;
    }
    auto reject = [&](u16 code, const std::string &msg, bool keep) {
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++counters_.requestsRejected;
        }
        return sendError(sock, req.requestId, code, msg) && keep;
    };

    Mount *mount = findMount(req.refName);
    if (mount == nullptr)
        return reject(kErrUnknownReference,
                      "no mount named '" + req.refName + "'", true);

    // The request rides the mount's streaming spine (the same code
    // path as gpx_map): chunked parallel ingest — plain or gzip —
    // through the borrowed pool, emission input-ordered into the
    // reply buffer. tryRun's recoverable discipline means a malformed
    // batch rejects this one request with a diagnostic error frame;
    // the daemon and the connection both survive (the batch tools'
    // fatal discipline would take every other client down with the
    // bad request).
    bool waited = false;
    switch (gate_.acquireFor(config_.queueTimeoutMs, &waited,
                             draining_)) {
    case AdmissionGate::Outcome::kDraining:
        return reject(kErrDraining, "server is draining", false);
    case AdmissionGate::Outcome::kTimedOut: {
        // Shed instead of queueing forever: the client gets explicit
        // load feedback plus a backoff hint, and its connection stays
        // usable for the retry.
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++counters_.requestsRejected;
            ++counters_.shedded;
        }
        return sendError(sock, req.requestId, kErrOverloaded,
                         "admission queue full for " +
                             std::to_string(config_.queueTimeoutMs) +
                             " ms",
                         config_.retryAfterMs);
    }
    case AdmissionGate::Outcome::kAcquired:
        break;
    }

    // Chaos hook: delay rules model a slow mapping stage (the way
    // tests fill the admission gate deterministically); failure rules
    // model a mid-request server-side fault.
    if (util::checkFault("serve.map")) {
        gate_.release();
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++counters_.ioFaults;
        }
        return reject(kErrIoFault, "injected server fault (serve.map)",
                      true);
    }

    // Pin this request's epoch: a concurrent REFRESH swaps the mount
    // pointer, not the epoch we hold, so the image under our feet
    // cannot unmap mid-request.
    std::shared_ptr<MountEpoch> epoch = currentEpoch(mount);

    std::istringstream r1(req.r1Fastq);
    std::istringstream r2(req.r2Fastq);
    std::ostringstream samOs;
    // SAM records only — the header is a per-mount constant served by
    // the HEADER frame, so batch responses concatenate cleanly.
    genomics::SamWriter sam(samOs, *mount->ref);
    // Non-fatal write checking: an emission fault (injected ENOSPC,
    // allocation-backed stream failure) fails this request with a
    // diagnostic; the daemon and connection survive.
    sam.checkWrites("reply buffer of request " +
                        std::to_string(req.requestId),
                    /*fatal_on_error=*/false);
    genpair::StreamingResult result;
    genomics::IngestError ingestError;
    const genpair::StreamRunStatus status =
        epoch->spine->tryRun(r1, r2, sam, result, &ingestError,
                             config_.maxPairsPerRequest);
    gate_.release();

    switch (status) {
    case genpair::StreamRunStatus::kParseError: {
        const char *side = ingestError.rank == 0   ? "R1: "
                           : ingestError.rank == 1 ? "R2: "
                                                   : "";
        return reject(kErrBadFastq, side + ingestError.message, true);
    }
    case genpair::StreamRunStatus::kTooLarge:
        return reject(kErrTooLarge, ingestError.message, false);
    case genpair::StreamRunStatus::kWriteError:
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++counters_.ioFaults;
        }
        return reject(kErrIoFault, ingestError.message, true);
    case genpair::StreamRunStatus::kOk:
        break;
    }

    MapReplyBody reply;
    reply.requestId = req.requestId;
    reply.pairCount = static_cast<u32>(result.pairs);
    reply.sam = samOs.str();
    if (req.flags & kMapWantStats) {
        std::ostringstream statsOs;
        result.stats.writeJson(statsOs);
        reply.statsJson = statsOs.str();
    }

    {
        std::lock_guard<std::mutex> lock(statsMu_);
        mount->stats += result.stats;
        ++counters_.requestsServed;
        counters_.pairsMapped += result.pairs;
        counters_.samBytesSent += reply.sam.size();
        counters_.admissionWaits += waited ? 1 : 0;
        counters_.mapSeconds += result.mapping.seconds;
        counters_.readerStallSeconds += result.stats.readerStallSeconds;
        counters_.writerStallSeconds += result.stats.writerStallSeconds;
    }
    if (!writeFrame(sock, kMapReply, encodeMapReply(reply))) {
        // Peer died (or stalled past SO_SNDTIMEO) mid-reply; only this
        // connection is affected.
        std::lock_guard<std::mutex> lock(statsMu_);
        ++counters_.ioFaults;
        return false;
    }
    return true;
}

void
ServeServer::handleConnection(util::Socket sock)
{
    bool lateArrival = false;
    {
        std::lock_guard<std::mutex> lock(connMu_);
        liveFds_.push_back(sock.fd());
        // If shutdown raced ahead of this registration, its fd
        // broadcast missed us; the flag check under the same lock
        // closes that window (a registered fd always gets woken).
        lateArrival = draining_.load(std::memory_order_relaxed);
    }

    // Scope guard: deregister the fd *before* the socket closes so the
    // shutdown broadcast can never touch a recycled descriptor.
    struct Deregister
    {
        ServeServer *server;
        int fd;
        ~Deregister()
        {
            std::lock_guard<std::mutex> lock(server->connMu_);
            auto &fds = server->liveFds_;
            fds.erase(std::find(fds.begin(), fds.end(), fd));
            --server->liveConnections_;
            server->connDone_.notify_all();
        }
    } deregister{ this, sock.fd() };

    if (lateArrival)
        return;

    // Per-connection deadlines. Reads get the precise treatment (poll
    // with a monotonic per-frame budget via readFrame); writes get the
    // SO_SNDTIMEO backstop so a peer that stops draining its receive
    // buffer fails the reply instead of pinning this thread.
    FrameTimeouts timeouts;
    if (config_.idleTimeoutMs > 0)
        timeouts.idleMs = config_.idleTimeoutMs;
    if (config_.connTimeoutMs > 0) {
        timeouts.frameMs = config_.connTimeoutMs;
        sock.setSendTimeout(config_.connTimeoutMs);
    }
    auto closeForDeadline = [&](bool idle) {
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++(idle ? counters_.idleClosed : counters_.deadlineExpired);
        }
        // Best-effort courtesy frame; the peer may of course be gone.
        sendError(sock, 0, kErrDeadline,
                  idle ? "idle timeout: no frame received"
                       : "read deadline expired mid-frame");
    };

    // HELLO handshake: the client leads with magic + version.
    Frame frame;
    switch (readFrame(sock, &frame, config_.maxFrameBytes, timeouts)) {
    case FrameRead::kFrame:
        break;
    case FrameRead::kIdleTimeout:
        closeForDeadline(/*idle=*/true);
        return;
    case FrameRead::kTimeout:
        closeForDeadline(/*idle=*/false);
        return;
    default:
        sendError(sock, 0, kErrBadFrame, "expected HELLO");
        return;
    }
    if (frame.type != kHelloRequest) {
        sendError(sock, 0, kErrBadFrame, "expected HELLO");
        return;
    }
    HelloBody hello;
    if (!decodeHello(frame.payload, &hello) ||
        hello.magic != kProtoMagic) {
        sendError(sock, 0, kErrBadMagic, "bad protocol magic");
        return;
    }
    if (hello.version != kProtoVersion) {
        sendError(sock, 0, kErrBadVersion,
                  "unsupported protocol version " +
                      std::to_string(hello.version) + " (server speaks " +
                      std::to_string(kProtoVersion) + ")");
        return;
    }
    HelloBody reply;
    reply.mounts = mountNames();
    if (!writeFrame(sock, kHelloReply, encodeHello(reply)))
        return;

    for (;;) {
        switch (readFrame(sock, &frame, config_.maxFrameBytes,
                          timeouts)) {
        case FrameRead::kFrame:
            break;
        case FrameRead::kTooLarge:
            sendError(sock, 0, kErrTooLarge, "frame exceeds limit");
            return;
        case FrameRead::kIdleTimeout:
            // The idle reaper: an abandoned connection gives its
            // handler thread back instead of holding it forever.
            closeForDeadline(/*idle=*/true);
            return;
        case FrameRead::kTimeout:
            // Slow-loris defense: a frame that dribbles past the
            // budget closes with a clean diagnostic.
            closeForDeadline(/*idle=*/false);
            return;
        case FrameRead::kEof:
        case FrameRead::kError:
            return;
        }
        if (draining_.load(std::memory_order_relaxed)) {
            sendError(sock, 0, kErrDraining, "server is draining");
            return;
        }
        switch (frame.type) {
        case kMapRequest:
            if (!handleMapRequest(sock, frame.payload))
                return;
            break;
        case kHeaderRequest: {
            PayloadReader r(frame.payload);
            std::string refName = r.takeString16();
            Mount *mount = r.done() ? findMount(refName) : nullptr;
            if (mount == nullptr) {
                if (!sendError(sock, 0, kErrUnknownReference,
                               "no mount named '" + refName + "'"))
                    return;
                break;
            }
            if (!writeBlobFrame(sock, kHeaderReply, mount->samHeader))
                return;
            break;
        }
        case kStatsRequest:
            if (!writeBlobFrame(sock, kStatsReply, statsJson()))
                return;
            break;
        case kRefreshRequest: {
            PayloadReader r(frame.payload);
            std::string refName = r.takeString16();
            if (!r.done()) {
                sendError(sock, 0, kErrBadFrame,
                          "undecodable REFRESH request");
                return;
            }
            std::string refreshError;
            if (!refreshMount(refName, &refreshError)) {
                // Request-scoped: the old epoch keeps serving and the
                // connection stays usable.
                if (!sendError(sock, 0, kErrRefreshFailed,
                               refreshError))
                    return;
                break;
            }
            std::vector<u8> payload;
            putString16(payload, refName);
            if (!writeFrame(sock, kRefreshReply, payload))
                return;
            break;
        }
        case kShutdownRequest:
            writeFrame(sock, kShutdownReply, {});
            requestShutdown();
            return;
        default:
            sendError(sock, 0, kErrBadFrame,
                      "unknown frame type " +
                          std::to_string(frame.type));
            return;
        }
    }
}

} // namespace serve
} // namespace gpx
