#include "serve/server.hh"

#include <algorithm>
#include <sstream>
#include <sys/socket.h>
#include <utility>

#include "genomics/fasta.hh"
#include "genomics/sam.hh"
#include "util/logging.hh"

namespace gpx {
namespace serve {

// --- AdmissionGate ---------------------------------------------------

bool
ServeServer::AdmissionGate::acquire(bool *waited,
                                    const std::atomic<bool> &draining)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (waited != nullptr)
        *waited = inFlight_ >= slots_;
    freed_.wait(lock, [&] {
        return inFlight_ < slots_ ||
               draining.load(std::memory_order_relaxed);
    });
    if (draining.load(std::memory_order_relaxed))
        return false;
    ++inFlight_;
    return true;
}

void
ServeServer::AdmissionGate::release()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        gpx_assert(inFlight_ > 0, "admission release without acquire");
        --inFlight_;
    }
    freed_.notify_one();
}

void
ServeServer::AdmissionGate::wakeAll()
{
    freed_.notify_all();
}

// --- ServeServer -----------------------------------------------------

ServeServer::ServeServer(std::vector<MountSpec> mounts,
                         const ServeConfig &config)
    : config_(config), gate_(config.admissionSlots)
{
    gpx_assert(!mounts.empty(), "ServeServer needs at least one mount");
    mounts_.reserve(mounts.size());
    for (auto &spec : mounts) {
        gpx_assert(spec.ref != nullptr, "mount needs a reference");
        Mount m;
        m.name = spec.name;
        m.ref = spec.ref;
        genpair::DriverConfig driver = config_.driver;
        driver.threads = config_.threads;
        m.mapper = std::make_unique<genpair::ParallelMapper>(
            *spec.ref, spec.view, driver);
        m.spine = std::make_unique<genpair::StreamingMapper>(
            *m.mapper, config_.chunkPairs, config_.ioThreads);
        // The SAM header is a pure function of the mount's reference;
        // render it once so every HEADER request is a memcpy.
        std::ostringstream os;
        genomics::SamWriter sam(os, *spec.ref);
        sam.writeHeader();
        m.samHeader = os.str();
        mounts_.push_back(std::move(m));
    }
    for (std::size_t i = 0; i < mounts_.size(); ++i)
        for (std::size_t j = i + 1; j < mounts_.size(); ++j)
            gpx_assert(mounts_[i].name != mounts_[j].name,
                       "duplicate mount name: ", mounts_[i].name);
}

ServeServer::~ServeServer()
{
    requestShutdown();
    waitUntilDrained();
}

bool
ServeServer::start(std::string *error)
{
    gpx_assert(!started_, "ServeServer::start called twice");
    std::optional<util::Socket> listener;
    if (!config_.socketPath.empty())
        listener = util::listenUnix(config_.socketPath, error);
    else
        listener = util::listenTcp(config_.port, error, &boundPort_);
    if (!listener)
        return false;
    listener_ = std::move(*listener);
    started_ = true;
    acceptThread_ = std::thread([this]() { acceptLoop(); });
    return true;
}

void
ServeServer::waitUntilDrained()
{
    if (!started_)
        return;
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::thread> handlers;
    {
        std::unique_lock<std::mutex> lock(connMu_);
        connDone_.wait(lock, [&] { return liveConnections_ == 0; });
        handlers.swap(connThreads_);
    }
    for (auto &t : handlers)
        t.join();
}

void
ServeServer::requestShutdown()
{
    draining_.store(true, std::memory_order_relaxed);
    // Wake the accept loop (accept() fails once the listener is shut
    // down) and every idle connection (blocked reads return EOF).
    listener_.shutdownBoth();
    gate_.wakeAll();
    std::lock_guard<std::mutex> lock(connMu_);
    for (int fd : liveFds_)
        ::shutdown(fd, SHUT_RD);
}

ServeCounters
ServeServer::counters() const
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return counters_;
}

std::vector<std::string>
ServeServer::mountNames() const
{
    std::vector<std::string> names;
    names.reserve(mounts_.size());
    for (const auto &m : mounts_)
        names.push_back(m.name);
    return names;
}

std::string
ServeServer::statsJson() const
{
    std::lock_guard<std::mutex> lock(statsMu_);
    std::ostringstream os;
    os << "{\n\"server\": {\n"
       << "  \"connections_accepted\": "
       << counters_.connectionsAccepted << ",\n"
       << "  \"requests_served\": " << counters_.requestsServed << ",\n"
       << "  \"requests_rejected\": " << counters_.requestsRejected
       << ",\n"
       << "  \"pairs_mapped\": " << counters_.pairsMapped << ",\n"
       << "  \"sam_bytes_sent\": " << counters_.samBytesSent << ",\n"
       << "  \"admission_waits\": " << counters_.admissionWaits << ",\n"
       << "  \"map_seconds\": " << counters_.mapSeconds << ",\n"
       << "  \"reader_stall_seconds\": " << counters_.readerStallSeconds
       << ",\n"
       << "  \"writer_stall_seconds\": " << counters_.writerStallSeconds
       << "\n},\n"
       << "\"mounts\": {\n";
    for (std::size_t i = 0; i < mounts_.size(); ++i) {
        os << "\"" << mounts_[i].name << "\": ";
        mounts_[i].stats.writeJson(os);
        if (i + 1 < mounts_.size())
            os << ",";
        os << "\n";
    }
    os << "}\n}\n";
    return os.str();
}

void
ServeServer::acceptLoop()
{
    for (;;) {
        auto conn = util::acceptOne(listener_, nullptr);
        if (!conn) {
            if (draining_.load(std::memory_order_relaxed))
                return;
            // Transient accept failure (e.g. the peer aborted inside
            // the backlog); keep serving.
            continue;
        }
        std::lock_guard<std::mutex> lock(connMu_);
        if (draining_.load(std::memory_order_relaxed))
            return; // drop the late arrival; its socket closes here
        ++liveConnections_;
        util::Socket sock = std::move(*conn);
        connThreads_.emplace_back(
            [this, s = std::move(sock)]() mutable {
                handleConnection(std::move(s));
            });
        {
            std::lock_guard<std::mutex> slock(statsMu_);
            ++counters_.connectionsAccepted;
        }
    }
}

ServeServer::Mount *
ServeServer::findMount(const std::string &refName)
{
    if (refName.empty())
        return mounts_.size() == 1 ? &mounts_[0] : nullptr;
    for (auto &m : mounts_)
        if (m.name == refName)
            return &m;
    return nullptr;
}

bool
ServeServer::sendError(const util::Socket &sock, u32 request_id,
                       u16 code, const std::string &message)
{
    ErrorBody body;
    body.requestId = request_id;
    body.code = code;
    body.message = message;
    return writeFrame(sock, kErrorReply, encodeError(body));
}

bool
ServeServer::handleMapRequest(const util::Socket &sock,
                              const std::vector<u8> &payload)
{
    MapRequestBody req;
    if (!decodeMapRequest(payload, &req)) {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++counters_.requestsRejected;
        sendError(sock, 0, kErrBadFrame, "undecodable MAP request");
        return false;
    }
    auto reject = [&](u16 code, const std::string &msg, bool keep) {
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++counters_.requestsRejected;
        }
        return sendError(sock, req.requestId, code, msg) && keep;
    };

    Mount *mount = findMount(req.refName);
    if (mount == nullptr)
        return reject(kErrUnknownReference,
                      "no mount named '" + req.refName + "'", true);

    // The request rides the mount's streaming spine (the same code
    // path as gpx_map): chunked parallel ingest — plain or gzip —
    // through the borrowed pool, emission input-ordered into the
    // reply buffer. tryRun's recoverable discipline means a malformed
    // batch rejects this one request with a diagnostic error frame;
    // the daemon and the connection both survive (the batch tools'
    // fatal discipline would take every other client down with the
    // bad request).
    bool waited = false;
    if (!gate_.acquire(&waited, draining_))
        return reject(kErrDraining, "server is draining", false);
    std::istringstream r1(req.r1Fastq);
    std::istringstream r2(req.r2Fastq);
    std::ostringstream samOs;
    // SAM records only — the header is a per-mount constant served by
    // the HEADER frame, so batch responses concatenate cleanly.
    genomics::SamWriter sam(samOs, *mount->ref);
    genpair::StreamingResult result;
    genomics::IngestError ingestError;
    const genpair::StreamRunStatus status =
        mount->spine->tryRun(r1, r2, sam, result, &ingestError,
                             config_.maxPairsPerRequest);
    gate_.release();

    switch (status) {
    case genpair::StreamRunStatus::kParseError: {
        const char *side = ingestError.rank == 0   ? "R1: "
                           : ingestError.rank == 1 ? "R2: "
                                                   : "";
        return reject(kErrBadFastq, side + ingestError.message, true);
    }
    case genpair::StreamRunStatus::kTooLarge:
        return reject(kErrTooLarge, ingestError.message, false);
    case genpair::StreamRunStatus::kOk:
        break;
    }

    MapReplyBody reply;
    reply.requestId = req.requestId;
    reply.pairCount = static_cast<u32>(result.pairs);
    reply.sam = samOs.str();
    if (req.flags & kMapWantStats) {
        std::ostringstream statsOs;
        result.stats.writeJson(statsOs);
        reply.statsJson = statsOs.str();
    }

    {
        std::lock_guard<std::mutex> lock(statsMu_);
        mount->stats += result.stats;
        ++counters_.requestsServed;
        counters_.pairsMapped += result.pairs;
        counters_.samBytesSent += reply.sam.size();
        counters_.admissionWaits += waited ? 1 : 0;
        counters_.mapSeconds += result.mapping.seconds;
        counters_.readerStallSeconds += result.stats.readerStallSeconds;
        counters_.writerStallSeconds += result.stats.writerStallSeconds;
    }
    return writeFrame(sock, kMapReply, encodeMapReply(reply));
}

void
ServeServer::handleConnection(util::Socket sock)
{
    bool lateArrival = false;
    {
        std::lock_guard<std::mutex> lock(connMu_);
        liveFds_.push_back(sock.fd());
        // If shutdown raced ahead of this registration, its fd
        // broadcast missed us; the flag check under the same lock
        // closes that window (a registered fd always gets woken).
        lateArrival = draining_.load(std::memory_order_relaxed);
    }

    // Scope guard: deregister the fd *before* the socket closes so the
    // shutdown broadcast can never touch a recycled descriptor.
    struct Deregister
    {
        ServeServer *server;
        int fd;
        ~Deregister()
        {
            std::lock_guard<std::mutex> lock(server->connMu_);
            auto &fds = server->liveFds_;
            fds.erase(std::find(fds.begin(), fds.end(), fd));
            --server->liveConnections_;
            server->connDone_.notify_all();
        }
    } deregister{ this, sock.fd() };

    if (lateArrival)
        return;

    // HELLO handshake: the client leads with magic + version.
    Frame frame;
    if (readFrame(sock, &frame, config_.maxFrameBytes) !=
            FrameRead::kFrame ||
        frame.type != kHelloRequest) {
        sendError(sock, 0, kErrBadFrame, "expected HELLO");
        return;
    }
    HelloBody hello;
    if (!decodeHello(frame.payload, &hello) ||
        hello.magic != kProtoMagic) {
        sendError(sock, 0, kErrBadMagic, "bad protocol magic");
        return;
    }
    if (hello.version != kProtoVersion) {
        sendError(sock, 0, kErrBadVersion,
                  "unsupported protocol version " +
                      std::to_string(hello.version) + " (server speaks " +
                      std::to_string(kProtoVersion) + ")");
        return;
    }
    HelloBody reply;
    reply.mounts = mountNames();
    if (!writeFrame(sock, kHelloReply, encodeHello(reply)))
        return;

    for (;;) {
        switch (readFrame(sock, &frame, config_.maxFrameBytes)) {
        case FrameRead::kFrame:
            break;
        case FrameRead::kTooLarge:
            sendError(sock, 0, kErrTooLarge, "frame exceeds limit");
            return;
        case FrameRead::kEof:
        case FrameRead::kError:
            return;
        }
        if (draining_.load(std::memory_order_relaxed)) {
            sendError(sock, 0, kErrDraining, "server is draining");
            return;
        }
        switch (frame.type) {
        case kMapRequest:
            if (!handleMapRequest(sock, frame.payload))
                return;
            break;
        case kHeaderRequest: {
            PayloadReader r(frame.payload);
            std::string refName = r.takeString16();
            Mount *mount = r.done() ? findMount(refName) : nullptr;
            if (mount == nullptr) {
                if (!sendError(sock, 0, kErrUnknownReference,
                               "no mount named '" + refName + "'"))
                    return;
                break;
            }
            if (!writeBlobFrame(sock, kHeaderReply, mount->samHeader))
                return;
            break;
        }
        case kStatsRequest:
            if (!writeBlobFrame(sock, kStatsReply, statsJson()))
                return;
            break;
        case kShutdownRequest:
            writeFrame(sock, kShutdownReply, {});
            requestShutdown();
            return;
        default:
            sendError(sock, 0, kErrBadFrame,
                      "unknown frame type " +
                          std::to_string(frame.type));
            return;
        }
    }
}

} // namespace serve
} // namespace gpx
