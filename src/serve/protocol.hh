/**
 * @file
 * gpx-serve-proto v1: the length-prefixed binary framing spoken
 * between gpx_serve and its clients.
 *
 * The normative specification lives in docs/serve_protocol.md (kept in
 * lockstep with this header by a doc-constants test); the short form:
 *
 *   frame := u32 length | u8 type | payload[length - 1]
 *
 * with all integers little-endian on the wire. A connection opens with
 * a HELLO exchange carrying the protocol magic and version, then
 * carries any number of request/response round trips. Request-scoped
 * failures (unknown reference, malformed FASTQ) answer with an ERROR
 * frame and leave the connection usable; protocol-scoped failures
 * (bad magic, oversize frame, undecodable frame) answer with an ERROR
 * frame and close.
 *
 * This header is the single source of truth for the constants and the
 * payload encode/decode helpers shared by server, client, tests and
 * the latency bench.
 */

#ifndef GPX_SERVE_PROTOCOL_HH
#define GPX_SERVE_PROTOCOL_HH

#include <optional>
#include <string>
#include <vector>

#include "util/socket.hh"
#include "util/types.hh"

namespace gpx {
namespace serve {

/** Wire magic: the bytes "GPXP" read as a little-endian u32. */
inline constexpr u32 kProtoMagic = 0x50585047;
/** Protocol version spoken by this build (v2: retry_after_ms in
 *  ERROR, REFRESH frames, DEADLINE/OVERLOADED codes). */
inline constexpr u16 kProtoVersion = 2;
/** Default ceiling on one frame's length field (64 MiB). */
inline constexpr u32 kDefaultMaxFrameBytes = 64u << 20;
/** Default ceiling on read pairs in one MAP request. */
inline constexpr u32 kDefaultMaxPairsPerRequest = 65536;

/** Frame types (the u8 after the length prefix). */
enum FrameType : u8
{
    kHelloRequest = 0x01,   ///< client -> server, first frame
    kHelloReply = 0x02,     ///< server -> client, mount table attached
    kMapRequest = 0x10,     ///< framed FASTQ pair batch
    kMapReply = 0x11,       ///< SAM records + optional stats JSON
    kHeaderRequest = 0x12,  ///< SAM header text of one mount
    kHeaderReply = 0x13,    ///<
    kStatsRequest = 0x20,   ///< server aggregate counters
    kStatsReply = 0x21,     ///< JSON payload
    kShutdownRequest = 0x30,///< drain and exit
    kShutdownReply = 0x31,  ///<
    kRefreshRequest = 0x32, ///< hot-swap a mount's index image
    kRefreshReply = 0x33,   ///< swap published (name echoed back)
    kErrorReply = 0x3F,     ///< see ErrorCode
};

/** ERROR frame codes. */
enum ErrorCode : u16
{
    kErrBadMagic = 1,        ///< HELLO magic mismatch (closes)
    kErrBadVersion = 2,      ///< unsupported protocol version (closes)
    kErrBadFrame = 3,        ///< undecodable/unknown frame (closes)
    kErrUnknownReference = 4,///< no such mount (connection survives)
    kErrBadFastq = 5,        ///< malformed FASTQ batch (survives)
    kErrTooLarge = 6,        ///< frame or pair-count limit (closes)
    kErrDraining = 7,        ///< server is shutting down (closes)
    kErrDeadline = 8,        ///< read/write deadline expired (closes)
    kErrOverloaded = 9,      ///< shed at the admission gate (survives;
                             ///< retryAfterMs says when to try again)
    kErrRefreshFailed = 10,  ///< index swap rejected (survives; old
                             ///< epoch keeps serving)
    kErrIoFault = 11,        ///< server-side I/O fault while serving
                             ///< the request (survives)
};

/** MAP request flag bits. */
enum MapFlags : u8
{
    kMapWantStats = 0x1, ///< attach per-request PipelineStats JSON
};

/** One decoded frame: type plus raw payload bytes. */
struct Frame
{
    u8 type = 0;
    std::vector<u8> payload;
};

/** HELLO payload (both directions; mounts filled by the reply only). */
struct HelloBody
{
    u32 magic = kProtoMagic;
    u16 version = kProtoVersion;
    std::vector<std::string> mounts;
};

/** MAP_REQUEST payload: one FASTQ pair batch bound for one mount. */
struct MapRequestBody
{
    u32 requestId = 0;
    u8 flags = 0;
    std::string refName; ///< empty = the server's sole mount
    std::string r1Fastq; ///< FASTQ text, read 1 of every pair
    std::string r2Fastq; ///< FASTQ text, read 2, same order
};

/** MAP_REPLY payload. */
struct MapReplyBody
{
    u32 requestId = 0;
    u32 pairCount = 0;
    std::string sam;       ///< SAM record lines (no header)
    std::string statsJson; ///< empty unless kMapWantStats was set
};

/** ERROR payload. */
struct ErrorBody
{
    u32 requestId = 0; ///< 0 when not tied to a MAP request
    u16 code = 0;
    std::string message;
    /** kErrOverloaded only: client backoff hint (0 = none given). */
    u32 retryAfterMs = 0;
};

// --- payload encoding ------------------------------------------------

/** Append little-endian scalars / length-prefixed strings to @p out. */
void putU16(std::vector<u8> &out, u16 v);
void putU32(std::vector<u8> &out, u32 v);
/** u16 length prefix; panics if @p s exceeds 65535 bytes. */
void putString16(std::vector<u8> &out, const std::string &s);
/** u32 length prefix. */
void putString32(std::vector<u8> &out, const std::string &s);

/**
 * Bounds-checked little-endian reader over one frame payload. All
 * take() calls fail permanently once any read runs past the end —
 * callers check ok() once after decoding a whole struct.
 */
class PayloadReader
{
  public:
    explicit PayloadReader(const std::vector<u8> &payload)
        : data_(payload.data()), size_(payload.size())
    {
    }

    u8 takeU8();
    u16 takeU16();
    u32 takeU32();
    std::string takeString16();
    std::string takeString32();

    /** True iff every take() so far was in bounds. */
    bool ok() const { return ok_; }
    /** True iff the whole payload was consumed (and ok()). */
    bool done() const { return ok_ && pos_ == size_; }

  private:
    bool take(void *out, u64 len);

    const u8 *data_;
    u64 size_;
    u64 pos_ = 0;
    bool ok_ = true;
};

// --- body encode/decode ----------------------------------------------

std::vector<u8> encodeHello(const HelloBody &body);
bool decodeHello(const std::vector<u8> &payload, HelloBody *out);

std::vector<u8> encodeMapRequest(const MapRequestBody &body);
bool decodeMapRequest(const std::vector<u8> &payload,
                      MapRequestBody *out);

std::vector<u8> encodeMapReply(const MapReplyBody &body);
bool decodeMapReply(const std::vector<u8> &payload, MapReplyBody *out);

std::vector<u8> encodeError(const ErrorBody &body);
bool decodeError(const std::vector<u8> &payload, ErrorBody *out);

// --- frame I/O -------------------------------------------------------

/** Write one frame (length prefix + type + payload). */
bool writeFrame(const util::Socket &sock, u8 type,
                const std::vector<u8> &payload);

/** Convenience: frame whose payload is one u32-length-prefixed blob. */
bool writeBlobFrame(const util::Socket &sock, u8 type,
                    const std::string &blob);

/** Read result of readFrame(). */
enum class FrameRead
{
    kFrame,       ///< a frame was read into the output
    kEof,         ///< peer closed cleanly between frames
    kTooLarge,    ///< length field exceeded @p max_frame_bytes
    kError,       ///< short read / I/O error
    kIdleTimeout, ///< no frame started within the idle budget
    kTimeout,     ///< frame started but stalled past the frame budget
};

/**
 * Per-read deadlines for readFrame(). Both default off (-1). idleMs
 * bounds the wait for a frame's *first byte* (an abandoned connection
 * parks here); frameMs is a monotonic budget for the rest of the
 * frame once it has started (a slow-loris peer dribbling bytes cannot
 * reset it).
 */
struct FrameTimeouts
{
    i64 idleMs = -1;
    i64 frameMs = -1;
};

/**
 * Read one frame. Never allocates more than @p max_frame_bytes; an
 * oversize length field is reported without consuming the payload
 * (the connection is unusable afterwards — close it).
 */
FrameRead readFrame(const util::Socket &sock, Frame *out,
                    u32 max_frame_bytes = kDefaultMaxFrameBytes,
                    const FrameTimeouts &timeouts = {});

} // namespace serve
} // namespace gpx

#endif // GPX_SERVE_PROTOCOL_HH
