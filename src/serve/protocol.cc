#include "serve/protocol.hh"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/logging.hh"

namespace gpx {
namespace serve {

// --- payload encoding ------------------------------------------------

void
putU16(std::vector<u8> &out, u16 v)
{
    out.push_back(static_cast<u8>(v & 0xff));
    out.push_back(static_cast<u8>(v >> 8));
}

void
putU32(std::vector<u8> &out, u32 v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<u8>(v >> shift));
}

void
putString16(std::vector<u8> &out, const std::string &s)
{
    gpx_assert(s.size() <= 0xffff, "string16 field overflow");
    putU16(out, static_cast<u16>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

void
putString32(std::vector<u8> &out, const std::string &s)
{
    gpx_assert(s.size() <= 0xffffffffull, "string32 field overflow");
    putU32(out, static_cast<u32>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

bool
PayloadReader::take(void *out, u64 len)
{
    if (!ok_ || size_ - pos_ < len) {
        ok_ = false;
        return false;
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return true;
}

u8
PayloadReader::takeU8()
{
    u8 v = 0;
    take(&v, 1);
    return v;
}

u16
PayloadReader::takeU16()
{
    u8 b[2] = {};
    take(b, 2);
    return static_cast<u16>(b[0] | (u16{ b[1] } << 8));
}

u32
PayloadReader::takeU32()
{
    u8 b[4] = {};
    take(b, 4);
    return b[0] | (u32{ b[1] } << 8) | (u32{ b[2] } << 16) |
           (u32{ b[3] } << 24);
}

std::string
PayloadReader::takeString16()
{
    u16 len = takeU16();
    if (!ok_ || size_ - pos_ < len) {
        ok_ = false;
        return {};
    }
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

std::string
PayloadReader::takeString32()
{
    u32 len = takeU32();
    if (!ok_ || size_ - pos_ < len) {
        ok_ = false;
        return {};
    }
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

// --- body encode/decode ----------------------------------------------

std::vector<u8>
encodeHello(const HelloBody &body)
{
    std::vector<u8> out;
    putU32(out, body.magic);
    putU16(out, body.version);
    gpx_assert(body.mounts.size() <= 0xffff, "too many mounts");
    putU16(out, static_cast<u16>(body.mounts.size()));
    for (const auto &name : body.mounts)
        putString16(out, name);
    return out;
}

bool
decodeHello(const std::vector<u8> &payload, HelloBody *out)
{
    PayloadReader r(payload);
    out->magic = r.takeU32();
    out->version = r.takeU16();
    u16 mountCount = r.takeU16();
    out->mounts.clear();
    for (u16 i = 0; i < mountCount && r.ok(); ++i)
        out->mounts.push_back(r.takeString16());
    return r.done();
}

std::vector<u8>
encodeMapRequest(const MapRequestBody &body)
{
    std::vector<u8> out;
    putU32(out, body.requestId);
    out.push_back(body.flags);
    putString16(out, body.refName);
    putString32(out, body.r1Fastq);
    putString32(out, body.r2Fastq);
    return out;
}

bool
decodeMapRequest(const std::vector<u8> &payload, MapRequestBody *out)
{
    PayloadReader r(payload);
    out->requestId = r.takeU32();
    out->flags = r.takeU8();
    out->refName = r.takeString16();
    out->r1Fastq = r.takeString32();
    out->r2Fastq = r.takeString32();
    return r.done();
}

std::vector<u8>
encodeMapReply(const MapReplyBody &body)
{
    std::vector<u8> out;
    putU32(out, body.requestId);
    putU32(out, body.pairCount);
    putString32(out, body.sam);
    putString32(out, body.statsJson);
    return out;
}

bool
decodeMapReply(const std::vector<u8> &payload, MapReplyBody *out)
{
    PayloadReader r(payload);
    out->requestId = r.takeU32();
    out->pairCount = r.takeU32();
    out->sam = r.takeString32();
    out->statsJson = r.takeString32();
    return r.done();
}

std::vector<u8>
encodeError(const ErrorBody &body)
{
    std::vector<u8> out;
    putU32(out, body.requestId);
    putU16(out, body.code);
    putString16(out, body.message);
    putU32(out, body.retryAfterMs);
    return out;
}

bool
decodeError(const std::vector<u8> &payload, ErrorBody *out)
{
    PayloadReader r(payload);
    out->requestId = r.takeU32();
    out->code = r.takeU16();
    out->message = r.takeString16();
    out->retryAfterMs = r.takeU32();
    return r.done();
}

// --- frame I/O -------------------------------------------------------

bool
writeFrame(const util::Socket &sock, u8 type,
           const std::vector<u8> &payload)
{
    gpx_assert(payload.size() < 0xffffffffull, "frame payload overflow");
    std::vector<u8> buf;
    buf.reserve(5 + payload.size());
    putU32(buf, static_cast<u32>(payload.size() + 1));
    buf.push_back(type);
    buf.insert(buf.end(), payload.begin(), payload.end());
    return sock.writeExact(buf.data(), buf.size());
}

bool
writeBlobFrame(const util::Socket &sock, u8 type, const std::string &blob)
{
    std::vector<u8> payload;
    putString32(payload, blob);
    return writeFrame(sock, type, payload);
}

FrameRead
readFrame(const util::Socket &sock, Frame *out, u32 max_frame_bytes,
          const FrameTimeouts &timeouts)
{
    using Clock = std::chrono::steady_clock;
    // The first byte waits out the *idle* budget (nothing in flight
    // yet); everything after it shares one monotonic *frame* budget,
    // so a peer dribbling one byte per poll interval still hits the
    // deadline (slow-loris defense).
    u8 prefix[4];
    auto first = sock.readExactDeadline(prefix, 1, timeouts.idleMs);
    if (!first.ok) {
        if (first.timedOut)
            return FrameRead::kIdleTimeout;
        return first.cleanEof ? FrameRead::kEof : FrameRead::kError;
    }
    const auto begin = Clock::now();
    auto budgetLeft = [&]() -> i64 {
        if (timeouts.frameMs < 0)
            return -1;
        auto spent = std::chrono::duration_cast<
                         std::chrono::milliseconds>(Clock::now() - begin)
                         .count();
        return std::max<i64>(0, timeouts.frameMs - spent);
    };
    auto rest = sock.readExactDeadline(prefix + 1, sizeof(prefix) - 1,
                                       budgetLeft());
    if (!rest.ok)
        return rest.timedOut ? FrameRead::kTimeout : FrameRead::kError;
    u32 len = prefix[0] | (u32{ prefix[1] } << 8) |
              (u32{ prefix[2] } << 16) | (u32{ prefix[3] } << 24);
    if (len == 0 || len > max_frame_bytes)
        return FrameRead::kTooLarge;
    auto typeRead = sock.readExactDeadline(&out->type, 1, budgetLeft());
    if (!typeRead.ok)
        return typeRead.timedOut ? FrameRead::kTimeout
                                 : FrameRead::kError;
    out->payload.resize(len - 1);
    if (len > 1) {
        auto body = sock.readExactDeadline(out->payload.data(), len - 1,
                                           budgetLeft());
        if (!body.ok)
            return body.timedOut ? FrameRead::kTimeout
                                 : FrameRead::kError;
    }
    return FrameRead::kFrame;
}

} // namespace serve
} // namespace gpx
