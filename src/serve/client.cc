#include "serve/client.hh"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace gpx {
namespace serve {

std::string
ClientStatus::describe() const
{
    if (ok)
        return {};
    if (errorFrame.has_value())
        return "server error " + std::to_string(errorFrame->code) +
               ": " + errorFrame->message;
    return "transport error: " + transportError;
}

std::optional<ServeClient>
ServeClient::connectUnix(const std::string &path, std::string *error)
{
    auto sock = util::connectUnix(path, error);
    if (!sock)
        return std::nullopt;
    ServeClient client(std::move(*sock));
    if (!client.helloExchange(error))
        return std::nullopt;
    return client;
}

std::optional<ServeClient>
ServeClient::connectTcp(const std::string &host, u16 port,
                        std::string *error)
{
    auto sock = util::connectTcp(host, port, error);
    if (!sock)
        return std::nullopt;
    ServeClient client(std::move(*sock));
    if (!client.helloExchange(error))
        return std::nullopt;
    return client;
}

bool
ServeClient::helloExchange(std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    if (!writeFrame(sock_, kHelloRequest, encodeHello(HelloBody{})))
        return fail("HELLO send failed");
    Frame frame;
    if (readFrame(sock_, &frame) != FrameRead::kFrame)
        return fail("HELLO reply read failed");
    if (frame.type == kErrorReply) {
        ErrorBody err;
        if (decodeError(frame.payload, &err))
            return fail("server rejected HELLO: " + err.message);
        return fail("server rejected HELLO");
    }
    HelloBody hello;
    if (frame.type != kHelloReply ||
        !decodeHello(frame.payload, &hello))
        return fail("malformed HELLO reply");
    if (hello.magic != kProtoMagic || hello.version != kProtoVersion)
        return fail("server speaks a different protocol");
    mounts_ = std::move(hello.mounts);
    return true;
}

bool
ServeClient::readReply(Frame *frame, u8 expected_type,
                       ClientStatus *status)
{
    switch (readFrame(sock_, frame)) {
    case FrameRead::kFrame:
        break;
    case FrameRead::kEof:
        status->transportError = "server closed the connection";
        return false;
    case FrameRead::kTooLarge:
        status->transportError = "oversize reply frame";
        return false;
    case FrameRead::kError:
        status->transportError = "reply read failed";
        return false;
    }
    if (frame->type == kErrorReply) {
        ErrorBody err;
        if (decodeError(frame->payload, &err)) {
            status->errorFrame = std::move(err);
        } else {
            status->transportError = "undecodable ERROR frame";
        }
        return false;
    }
    if (frame->type != expected_type) {
        status->transportError =
            "unexpected reply type " + std::to_string(frame->type);
        return false;
    }
    return true;
}

ClientStatus
ServeClient::mapBatch(const std::string &ref_name,
                      const std::string &r1_fastq,
                      const std::string &r2_fastq, bool want_stats,
                      MapReplyBody *reply)
{
    u64 backoff = retry_.backoffMs;
    for (u32 attempt = 0;; ++attempt) {
        ClientStatus status = mapBatchOnce(ref_name, r1_fastq, r2_fastq,
                                           want_stats, reply);
        // Only OVERLOADED is retryable: the server explicitly said
        // "come back later" and the connection is still usable.
        // Transport failures and other error codes stay fail-fast.
        const bool shed = !status.ok && status.errorFrame.has_value() &&
                          status.errorFrame->code == kErrOverloaded;
        if (!shed || attempt >= retry_.maxRetries)
            return status;
        const u64 hint = status.errorFrame->retryAfterMs;
        const u64 waitMs = std::max<u64>(hint, backoff);
        backoff = std::min<u64>(backoff * 2, retry_.maxBackoffMs);
        ++retriesPerformed_;
        std::this_thread::sleep_for(std::chrono::milliseconds(waitMs));
    }
}

ClientStatus
ServeClient::mapBatchOnce(const std::string &ref_name,
                          const std::string &r1_fastq,
                          const std::string &r2_fastq, bool want_stats,
                          MapReplyBody *reply)
{
    ClientStatus status;
    MapRequestBody req;
    req.requestId = nextRequestId_++;
    req.flags = want_stats ? kMapWantStats : 0;
    req.refName = ref_name;
    req.r1Fastq = r1_fastq;
    req.r2Fastq = r2_fastq;
    if (!writeFrame(sock_, kMapRequest, encodeMapRequest(req))) {
        status.transportError = "MAP request send failed";
        return status;
    }
    Frame frame;
    if (!readReply(&frame, kMapReply, &status))
        return status;
    if (!decodeMapReply(frame.payload, reply)) {
        status.transportError = "undecodable MAP reply";
        return status;
    }
    if (reply->requestId != req.requestId) {
        status.transportError = "MAP reply id mismatch";
        return status;
    }
    status.ok = true;
    return status;
}

ClientStatus
ServeClient::fetchHeader(const std::string &ref_name,
                         std::string *sam_header)
{
    ClientStatus status;
    std::vector<u8> payload;
    putString16(payload, ref_name);
    if (!writeFrame(sock_, kHeaderRequest, payload)) {
        status.transportError = "HEADER request send failed";
        return status;
    }
    Frame frame;
    if (!readReply(&frame, kHeaderReply, &status))
        return status;
    PayloadReader r(frame.payload);
    *sam_header = r.takeString32();
    if (!r.done()) {
        status.transportError = "undecodable HEADER reply";
        return status;
    }
    status.ok = true;
    return status;
}

ClientStatus
ServeClient::fetchStats(std::string *json)
{
    ClientStatus status;
    if (!writeFrame(sock_, kStatsRequest, {})) {
        status.transportError = "STATS request send failed";
        return status;
    }
    Frame frame;
    if (!readReply(&frame, kStatsReply, &status))
        return status;
    PayloadReader r(frame.payload);
    *json = r.takeString32();
    if (!r.done()) {
        status.transportError = "undecodable STATS reply";
        return status;
    }
    status.ok = true;
    return status;
}

ClientStatus
ServeClient::refreshMount(const std::string &ref_name)
{
    ClientStatus status;
    std::vector<u8> payload;
    putString16(payload, ref_name);
    if (!writeFrame(sock_, kRefreshRequest, payload)) {
        status.transportError = "REFRESH request send failed";
        return status;
    }
    Frame frame;
    if (!readReply(&frame, kRefreshReply, &status))
        return status;
    PayloadReader r(frame.payload);
    (void)r.takeString16(); // echoed mount name
    if (!r.done()) {
        status.transportError = "undecodable REFRESH reply";
        return status;
    }
    status.ok = true;
    return status;
}

ClientStatus
ServeClient::shutdownServer()
{
    ClientStatus status;
    if (!writeFrame(sock_, kShutdownRequest, {})) {
        status.transportError = "SHUTDOWN request send failed";
        return status;
    }
    Frame frame;
    if (!readReply(&frame, kShutdownReply, &status))
        return status;
    status.ok = true;
    return status;
}

} // namespace serve
} // namespace gpx
