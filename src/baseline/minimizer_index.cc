#include "baseline/minimizer_index.hh"

#include <algorithm>
#include <bit>
#include <deque>

#include "util/logging.hh"
#include "util/xxhash.hh"

namespace gpx {
namespace baseline {

namespace {

/** Invertible 64-bit mix (Minimap2's hash64) applied to packed k-mers. */
u64
mixHash(u64 key, u64 mask)
{
    key = (~key + (key << 21)) & mask;
    key = key ^ (key >> 24);
    key = ((key + (key << 3)) + (key << 8)) & mask;
    key = key ^ (key >> 14);
    key = ((key + (key << 2)) + (key << 4)) & mask;
    key = key ^ (key >> 28);
    key = (key + (key << 31)) & mask;
    return key;
}

} // namespace

std::vector<Minimizer>
extractMinimizers(const genomics::DnaView &seq,
                  const MinimizerParams &params)
{
    std::vector<Minimizer> out;
    const u32 k = params.k;
    const u32 w = params.w;
    if (seq.size() < k)
        return out;
    gpx_assert(k >= 4 && k <= 31, "k must be in [4,31]");
    gpx_assert(w >= 1, "w must be positive");

    const u64 mask = (u64{1} << (2 * k)) - 1;
    u64 fwd = 0, rev = 0;
    // Expected density: roughly 2/(w+1) positions win a window.
    out.reserve(2 * seq.size() / (w + 1) + 16);

    struct Cand
    {
        u64 hash;
        u64 pos;
        bool reverse;
    };
    // Monotonic queue over the sliding window as a fixed-capacity power-
    // of-two ring: positions in the queue span at most w+1 values before
    // the front eviction runs, so no allocation ever happens mid-stream.
    const u32 cap = std::bit_ceil(w + 1u);
    const u32 rmask = cap - 1;
    std::vector<Cand> ring(cap);
    u32 head = 0;
    u32 count = 0;
    u64 lastEmittedPos = ~u64{0};

    // Roll the k-mer hashes directly over the packed words: one 64-bit
    // load yields 32 bases, decoded by shifting a register instead of a
    // per-base packed-byte extraction.
    const std::size_t len = seq.size();
    const std::size_t nw = seq.numWords();
    std::size_t i = 0;
    for (std::size_t wi = 0; wi < nw; ++wi) {
        u64 word = seq.word(wi);
        const std::size_t cnt = std::min<std::size_t>(32, len - 32 * wi);
        for (std::size_t t = 0; t < cnt; ++t, ++i) {
            const u8 b = static_cast<u8>(word & 0x3u);
            word >>= 2;
            fwd = ((fwd << 2) | b) & mask;
            rev = (rev >> 2) |
                  (static_cast<u64>(genomics::complementBase(b))
                   << (2 * (k - 1)));
            if (i + 1 < k)
                continue;
            u64 pos = i + 1 - k;
            // Canonical k-mer; skip palindromic ties to stay
            // strand-neutral.
            if (fwd == rev)
                continue;
            bool reverse = rev < fwd;
            u64 canon = reverse ? rev : fwd;
            Cand c{ mixHash(canon, mask), pos, reverse };

            while (count > 0 &&
                   ring[(head + count - 1) & rmask].hash >= c.hash)
                --count;
            ring[(head + count) & rmask] = c;
            ++count;
            while (ring[head].pos + w <= pos) {
                head = (head + 1) & rmask;
                --count;
            }

            if (pos + 1 >= w || i + 1 == len) {
                const Cand &m = ring[head];
                if (m.pos != lastEmittedPos) {
                    out.push_back({ m.hash, m.pos, m.reverse });
                    lastEmittedPos = m.pos;
                }
            }
        }
    }
    return out;
}

std::vector<Minimizer>
extractMinimizersScalar(const genomics::DnaView &seq,
                        const MinimizerParams &params)
{
    std::vector<Minimizer> out;
    const u32 k = params.k;
    const u32 w = params.w;
    if (seq.size() < k)
        return out;
    gpx_assert(k >= 4 && k <= 31, "k must be in [4,31]");

    const u64 mask = (u64{1} << (2 * k)) - 1;
    u64 fwd = 0, rev = 0;

    struct Cand
    {
        u64 hash;
        u64 pos;
        bool reverse;
    };
    std::deque<Cand> window;
    u64 lastEmittedPos = ~u64{0};

    for (std::size_t i = 0; i < seq.size(); ++i) {
        u8 b = seq.at(i);
        fwd = ((fwd << 2) | b) & mask;
        rev = (rev >> 2) | (static_cast<u64>(genomics::complementBase(b))
                            << (2 * (k - 1)));
        if (i + 1 < k)
            continue;
        u64 pos = i + 1 - k;
        // Canonical k-mer; skip palindromic ties to stay strand-neutral.
        if (fwd == rev)
            continue;
        bool reverse = rev < fwd;
        u64 canon = reverse ? rev : fwd;
        Cand c{ mixHash(canon, mask), pos, reverse };

        while (!window.empty() && window.back().hash >= c.hash)
            window.pop_back();
        window.push_back(c);
        while (window.front().pos + w <= pos)
            window.pop_front();

        if (pos + 1 >= w || i + 1 == seq.size()) {
            const Cand &m = window.front();
            if (m.pos != lastEmittedPos) {
                out.push_back({ m.hash, m.pos, m.reverse });
                lastEmittedPos = m.pos;
            }
        }
    }
    return out;
}

MinimizerIndex::MinimizerIndex(const genomics::Reference &ref,
                               const MinimizerParams &params)
    : params_(params)
{
    struct Rec
    {
        u64 hash;
        GlobalPos pos;
        bool reverse;
    };
    std::vector<Rec> recs;
    for (u32 c = 0; c < ref.numChromosomes(); ++c) {
        auto mins = extractMinimizers(ref.chromosome(c), params_);
        GlobalPos base = ref.chromosomeStart(c);
        for (const auto &m : mins)
            recs.push_back({ m.hash, base + m.pos, m.reverse });
    }
    std::sort(recs.begin(), recs.end(), [](const Rec &a, const Rec &b) {
        if (a.hash != b.hash)
            return a.hash < b.hash;
        return a.pos < b.pos;
    });

    std::size_t i = 0;
    while (i < recs.size()) {
        std::size_t j = i;
        while (j < recs.size() && recs[j].hash == recs[i].hash)
            ++j;
        if (j - i <= params_.maxOccurrences) {
            hashes_.push_back(recs[i].hash);
            offsets_.push_back(entries_.size());
            for (std::size_t t = i; t < j; ++t)
                entries_.push_back({ recs[t].pos, recs[t].reverse });
        }
        i = j;
    }
    offsets_.push_back(entries_.size());
}

std::span<const MinimizerIndex::Entry>
MinimizerIndex::lookup(u64 hash) const
{
    auto it = std::lower_bound(hashes_.begin(), hashes_.end(), hash);
    if (it == hashes_.end() || *it != hash)
        return {};
    std::size_t idx = static_cast<std::size_t>(it - hashes_.begin());
    return { entries_.data() + offsets_[idx],
             entries_.data() + offsets_[idx + 1] };
}

} // namespace baseline
} // namespace gpx
