#include "baseline/mm2lite.hh"

#include <algorithm>
#include <unordered_set>

#include "util/logging.hh"

namespace gpx {
namespace baseline {

using align::Anchor;
using align::Chain;
using genomics::DnaSequence;
using genomics::Mapping;
using genomics::MappingPath;
using genomics::PairMapping;
using genomics::Read;
using genomics::ReadPair;

namespace {

/**
 * Clamp a window [pos-slack, pos+len+slack) to the chromosome that
 * contains pos; returns the global start and the usable length.
 */
std::pair<GlobalPos, u64>
clampWindow(const genomics::Reference &ref, GlobalPos pos, u64 len,
            u64 slack)
{
    genomics::ChromPos cp = ref.toChromPos(pos);
    u64 chromLen = ref.chromosomeLength(cp.chrom);
    u64 lo = cp.offset > slack ? cp.offset - slack : 0;
    u64 hi = std::min<u64>(chromLen, cp.offset + len + slack);
    GlobalPos start = ref.chromosomeStart(cp.chrom) + lo;
    return { start, hi > lo ? hi - lo : 0 };
}

} // namespace

Mm2Lite::Mm2Lite(const genomics::Reference &ref, const Mm2LiteParams &params)
    : ref_(ref), params_(params),
      index_(std::make_shared<MinimizerIndex>(ref, params.minimizers))
{
}

Mm2Lite::Mm2Lite(const genomics::Reference &ref, const Mm2LiteParams &params,
                 std::shared_ptr<const MinimizerIndex> index)
    : ref_(ref), params_(params), index_(std::move(index))
{
    gpx_assert(index_, "shared index must not be null");
}

std::vector<Anchor>
Mm2Lite::collectAnchors(const Read &read)
{
    std::vector<Anchor> anchors;
    const u32 k = params_.minimizers.k;
    auto mins = extractMinimizers(read.seq, params_.minimizers);
    // Resolve each minimizer's occurrence list once, size the anchor
    // vector exactly, then fill it.
    std::vector<std::span<const MinimizerIndex::Entry>> hits;
    hits.reserve(mins.size());
    std::size_t total = 0;
    for (const auto &m : mins) {
        hits.push_back(index_->lookup(m.hash));
        total += hits.back().size();
    }
    anchors.reserve(total);
    for (std::size_t mi = 0; mi < mins.size(); ++mi) {
        const auto &m = mins[mi];
        for (const auto &e : hits[mi]) {
            bool reverse = m.reverse != e.reverse;
            Anchor a;
            a.length = k;
            a.reverse = reverse;
            if (!reverse) {
                a.queryPos = m.pos;
            } else {
                // Coordinates of the reverse-complemented read.
                a.queryPos = read.seq.size() - k - m.pos;
            }
            a.refPos = e.pos;
            anchors.push_back(a);
        }
    }
    return anchors;
}

std::vector<Chain>
Mm2Lite::planRead(const Read &read)
{
    std::vector<Anchor> anchors;
    {
        util::StageTimers::Scope scope(timers_, stages::kSeeding);
        anchors = collectAnchors(read);
    }

    std::vector<Chain> chains;
    {
        util::StageTimers::Scope scope(timers_, stages::kChaining);
        std::vector<Anchor> fwd, rev;
        for (const auto &a : anchors)
            (a.reverse ? rev : fwd).push_back(a);
        for (auto *side : { &fwd, &rev }) {
            auto part = align::chainAnchors(*side, params_.chain);
            for (auto &c : part) {
                dpWork_.chainCells += c.cellUpdates;
                chains.push_back(std::move(c));
            }
        }
        std::sort(chains.begin(), chains.end(),
                  [](const Chain &a, const Chain &b) {
                      return a.score > b.score;
                  });
        if (chains.size() > params_.maxCandidates)
            chains.resize(params_.maxCandidates);
    }
    return chains;
}

std::vector<Mapping>
Mm2Lite::finishRead(std::vector<Mapping> &mappings)
{
    std::sort(mappings.begin(), mappings.end(),
              [](const Mapping &a, const Mapping &b) {
                  return a.score > b.score;
              });
    // Deduplicate identical positions (multiple chains, same alignment):
    // hash-set membership keeps the first (best-scoring) occurrence in
    // O(n) instead of the old quadratic scan over the kept list.
    std::vector<Mapping> unique;
    unique.reserve(mappings.size());
    std::unordered_set<u64> seen;
    seen.reserve(mappings.size() * 2);
    for (auto &m : mappings) {
        const u64 key = (m.pos << 1) | (m.reverse ? 1u : 0u);
        if (seen.insert(key).second)
            unique.push_back(std::move(m));
    }
    return unique;
}

std::vector<Mapping>
Mm2Lite::mapRead(const Read &read)
{
    std::vector<Chain> chains = planRead(read);

    std::vector<Mapping> mappings;
    {
        util::StageTimers::Scope scope(timers_, stages::kAlignment);
        DnaSequence rc;
        bool haveRc = false;
        for (const auto &chain : chains) {
            const DnaSequence *query = &read.seq;
            if (chain.reverse) {
                if (!haveRc) {
                    rc = read.seq.revComp();
                    haveRc = true;
                }
                query = &rc;
            }
            // Expected read start on the reference.
            GlobalPos expect = chain.refStart > chain.queryStart
                                   ? chain.refStart - chain.queryStart
                                   : 0;
            auto [wstart, wlen] = clampWindow(ref_, expect, query->size(),
                                              params_.alignSlack);
            if (wlen < query->size())
                continue;
            genomics::DnaView window = ref_.windowView(wstart, wlen);
            // Band: the window only extends alignSlack around the chain
            // diagonal, so a band of slack + indel headroom is lossless
            // for any alignment the window can contain.
            auto res = align::fitAlign(*query, window, params_.scoring,
                                       static_cast<i32>(
                                           2 * params_.alignSlack + 32),
                                       alignScratch_);
            dpWork_.alignCells += res.cellUpdates;
            if (!res.valid || res.score < params_.minAlignScore)
                continue;
            Mapping m;
            m.mapped = true;
            m.pos = wstart + res.targetStart;
            m.reverse = chain.reverse;
            m.score = res.score;
            m.cigar = std::move(res.cigar);
            mappings.push_back(std::move(m));
        }
    }

    return finishRead(mappings);
}

Mapping
Mm2Lite::alignAt(const DnaSequence &read, GlobalPos pos, u32 slack)
{
    util::StageTimers::Scope scope(timers_, stages::kAlignment);
    Mapping m;
    auto [wstart, wlen] = clampWindow(ref_, pos, read.size(), slack);
    if (wlen < read.size())
        return m;
    genomics::DnaView window = ref_.windowView(wstart, wlen);
    auto res = align::fitAlign(read, window, params_.scoring,
                               static_cast<i32>(2 * slack + 32),
                               alignScratch_);
    dpWork_.alignCells += res.cellUpdates;
    if (!res.valid || res.score < params_.minAlignScore)
        return m;
    m.mapped = true;
    m.pos = wstart + res.targetStart;
    m.score = res.score;
    m.cigar = std::move(res.cigar);
    return m;
}

PairMapping
Mm2Lite::pairFromCandidates(const std::vector<Mapping> &cands1,
                            const std::vector<Mapping> &cands2)
{
    util::StageTimers::Scope scope(timers_, stages::kPairing);
    PairMapping best;
    best.path = MappingPath::FullDpFallback;
    i64 bestScore = -1;

    // Proper FR pair: opposite strands, ordered, bounded insert.
    for (const auto &m1 : cands1) {
        for (const auto &m2 : cands2) {
            if (m1.reverse == m2.reverse)
                continue;
            const Mapping &left = m1.reverse ? m2 : m1;
            const Mapping &right = m1.reverse ? m1 : m2;
            if (right.pos < left.pos)
                continue;
            u64 span = right.pos + right.cigar.refSpan() - left.pos;
            if (span > params_.maxInsert)
                continue;
            i64 score = static_cast<i64>(m1.score) + m2.score;
            if (score > bestScore) {
                bestScore = score;
                best.first = m1;
                best.second = m2;
            }
        }
    }
    if (bestScore >= 0)
        return best;

    // No proper pair: report the best independent mappings.
    if (!cands1.empty())
        best.first = cands1.front();
    if (!cands2.empty())
        best.second = cands2.front();
    if (!best.first.mapped && !best.second.mapped)
        best.path = MappingPath::Unmapped;
    return best;
}

PairMapping
Mm2Lite::mapPair(const ReadPair &pair)
{
    auto cands1 = mapRead(pair.first);
    auto cands2 = mapRead(pair.second);
    return pairFromCandidates(cands1, cands2);
}

void
Mm2Lite::mapPairsBatch(const ReadPair *const *pairs, std::size_t count,
                       PairMapping *out)
{
    // Plan every read of the batch first (seeding + chaining, scalar),
    // so the alignment phase can hand one flat task list to the
    // interleaved DP engine. Reads are 2 per pair, plans are indexed
    // [2 * p + side].
    struct ReadState
    {
        std::vector<Chain> chains;
        DnaSequence rc; ///< stable storage — FitTasks hold views into it
        bool haveRc = false;
        std::vector<Mapping> mappings;
    };
    std::vector<ReadState> reads(2 * count);
    for (std::size_t p = 0; p < count; ++p) {
        reads[2 * p + 0].chains = planRead(pairs[p]->first);
        reads[2 * p + 1].chains = planRead(pairs[p]->second);
    }

    // One FitTask per surviving chain window of every read, in the
    // exact order the scalar loop would visit them.
    struct TaskRef
    {
        u32 read;      ///< index into reads[]
        u32 chain;     ///< index into that read's chain list
        GlobalPos wstart;
    };
    std::vector<align::FitTask> tasks;
    std::vector<TaskRef> refs;
    std::vector<align::AlignResult> results;
    {
        util::StageTimers::Scope scope(timers_, stages::kAlignment);
        for (std::size_t p = 0; p < count; ++p) {
            for (u32 side = 0; side < 2; ++side) {
                ReadState &rs = reads[2 * p + side];
                const Read &read =
                    side == 0 ? pairs[p]->first : pairs[p]->second;
                for (u32 ci = 0; ci < rs.chains.size(); ++ci) {
                    const Chain &chain = rs.chains[ci];
                    const DnaSequence *query = &read.seq;
                    if (chain.reverse) {
                        if (!rs.haveRc) {
                            rs.rc = read.seq.revComp();
                            rs.haveRc = true;
                        }
                        query = &rs.rc;
                    }
                    GlobalPos expect =
                        chain.refStart > chain.queryStart
                            ? chain.refStart - chain.queryStart
                            : 0;
                    auto [wstart, wlen] = clampWindow(
                        ref_, expect, query->size(), params_.alignSlack);
                    if (wlen < query->size())
                        continue;
                    align::FitTask ft;
                    ft.query = *query;
                    ft.target = ref_.windowView(wstart, wlen);
                    ft.band =
                        static_cast<i32>(2 * params_.alignSlack + 32);
                    tasks.push_back(ft);
                    refs.push_back({ static_cast<u32>(2 * p + side), ci,
                                     wstart });
                }
            }
        }
        results.resize(tasks.size());
        align::fitAlignBatch(tasks.data(), tasks.size(), params_.scoring,
                             batchScratch_, results.data());

        // Scalar epilogue per task, replayed in visit order.
        for (std::size_t t = 0; t < tasks.size(); ++t) {
            align::AlignResult &res = results[t];
            const TaskRef &tr = refs[t];
            ReadState &rs = reads[tr.read];
            dpWork_.alignCells += res.cellUpdates;
            if (!res.valid || res.score < params_.minAlignScore)
                continue;
            Mapping m;
            m.mapped = true;
            m.pos = tr.wstart + res.targetStart;
            m.reverse = rs.chains[tr.chain].reverse;
            m.score = res.score;
            m.cigar = std::move(res.cigar);
            rs.mappings.push_back(std::move(m));
        }
    }

    for (std::size_t p = 0; p < count; ++p) {
        auto cands1 = finishRead(reads[2 * p + 0].mappings);
        auto cands2 = finishRead(reads[2 * p + 1].mappings);
        out[p] = pairFromCandidates(cands1, cands2);
    }
}

void
Mm2Lite::alignAtBatch(const AlignAtTask *batch, std::size_t count,
                      Mapping *out)
{
    util::StageTimers::Scope scope(timers_, stages::kAlignment);
    std::vector<align::FitTask> tasks(count);
    std::vector<GlobalPos> wstarts(count);
    std::vector<u8> skip(count, 0);
    for (std::size_t t = 0; t < count; ++t) {
        const AlignAtTask &at = batch[t];
        auto [wstart, wlen] =
            clampWindow(ref_, at.pos, at.read->size(), at.slack);
        wstarts[t] = wstart;
        if (wlen < at.read->size()) {
            skip[t] = 1;
            continue; // fitAlignBatch treats the empty task as invalid
        }
        tasks[t].query = *at.read;
        tasks[t].target = ref_.windowView(wstart, wlen);
        tasks[t].band = static_cast<i32>(2 * at.slack + 32);
    }
    std::vector<align::AlignResult> results(count);
    align::fitAlignBatch(tasks.data(), count, params_.scoring,
                         batchScratch_, results.data());
    for (std::size_t t = 0; t < count; ++t) {
        Mapping &m = out[t];
        m = Mapping{};
        if (skip[t])
            continue;
        align::AlignResult &res = results[t];
        dpWork_.alignCells += res.cellUpdates;
        if (!res.valid || res.score < params_.minAlignScore)
            continue;
        m.mapped = true;
        m.pos = wstarts[t] + res.targetStart;
        m.score = res.score;
        m.cigar = std::move(res.cigar);
    }
}

} // namespace baseline
} // namespace gpx
