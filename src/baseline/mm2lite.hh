/**
 * @file
 * Mm2Lite: a Minimap2-like seed-chain-align read mapper.
 *
 * Serves three roles from the paper's evaluation (§6):
 *  - the "MM2 (CPU)" software baseline,
 *  - the traditional DP pipeline that GenPair falls back to when SeedMap
 *    or the Paired-Adjacency filter fails (Fig. 10, left fallback arrows),
 *  - the per-stage timing source for the Fig. 1 execution-time breakdown.
 */

#ifndef GPX_BASELINE_MM2LITE_HH
#define GPX_BASELINE_MM2LITE_HH

#include <memory>
#include <vector>

#include "align/affine.hh"
#include "align/chain.hh"
#include "baseline/minimizer_index.hh"
#include "genomics/readpair.hh"
#include "genomics/reference.hh"
#include "genomics/scoring.hh"
#include "util/timer.hh"
#include "util/types.hh"

namespace gpx {
namespace baseline {

/** Mapper configuration. */
struct Mm2LiteParams
{
    MinimizerParams minimizers;
    align::ChainParams chain;
    genomics::ScoringScheme scoring = genomics::ScoringScheme::shortRead();
    u32 alignSlack = 48;   ///< extra reference bases around a chain window
    i32 minAlignScore = 60;///< discard alignments below this score
    u32 maxInsert = 1200;  ///< maximum proper-pair insert size
    u32 maxCandidates = 6; ///< alignments attempted per read
};

/** Stage names used with the breakdown timers. */
namespace stages {
inline constexpr const char *kSeeding = "seeding";
inline constexpr const char *kChaining = "chaining";
inline constexpr const char *kAlignment = "alignment";
inline constexpr const char *kPairing = "pairing/other";
} // namespace stages

/** DP work counters (MCUPS accounting for GenDP integration, §7.4). */
struct DpWork
{
    u64 chainCells = 0;
    u64 alignCells = 0;
};

/** Seed-chain-align mapper with paired-end resolution. */
class Mm2Lite
{
  public:
    Mm2Lite(const genomics::Reference &ref, const Mm2LiteParams &params);

    /**
     * Construct with a pre-built shared index (the parallel driver
     * builds the index once and hands it to per-thread mappers).
     */
    Mm2Lite(const genomics::Reference &ref, const Mm2LiteParams &params,
            std::shared_ptr<const MinimizerIndex> index);

    /** Map a single read; returns candidate mappings sorted by score. */
    std::vector<genomics::Mapping> mapRead(const genomics::Read &read);

    /** Map a pair with the FR orientation / insert-size constraint. */
    genomics::PairMapping mapPair(const genomics::ReadPair &pair);

    /**
     * Map @p count pairs through the interleaved DP engine: every
     * chain alignment of every read in the batch joins one
     * align::fitAlignBatch() run, so length-uniform short-read batches
     * fill all SIMD lanes across read and pair boundaries. Per-pair
     * results are bit-identical to mapPair() — the seeding, chaining,
     * filtering and pairing logic is shared code, and the batch DP
     * engine is lane-exact against the scalar one.
     */
    void mapPairsBatch(const genomics::ReadPair *const *pairs,
                       std::size_t count, genomics::PairMapping *out);

    /**
     * Align a read at a known candidate position (the "DP-Alignment"
     * fallback entry of Fig. 10 that bypasses seeding and chaining).
     *
     * @param read Read to align (already in forward orientation).
     * @param pos Expected start of the alignment on the reference.
     * @param slack Window slack on both sides.
     */
    genomics::Mapping alignAt(const genomics::DnaSequence &read,
                              GlobalPos pos, u32 slack);

    /** One alignAt() request inside an alignAtBatch() run. */
    struct AlignAtTask
    {
        const genomics::DnaSequence *read = nullptr;
        GlobalPos pos = 0;
        u32 slack = 0;
    };

    /**
     * alignAt() over a batch of independent requests, interleaved
     * across SIMD lanes. out[i] is bit-identical to
     * alignAt(*tasks[i].read, tasks[i].pos, tasks[i].slack).
     */
    void alignAtBatch(const AlignAtTask *tasks, std::size_t count,
                      genomics::Mapping *out);

    /** Per-stage wall-clock accumulators (Fig. 1). */
    util::StageTimers &timers() { return timers_; }
    const util::StageTimers &timers() const { return timers_; }

    /** DP cell-update counters. */
    const DpWork &dpWork() const { return dpWork_; }

    const Mm2LiteParams &params() const { return params_; }
    const genomics::Reference &reference() const { return ref_; }

  private:
    std::vector<align::Anchor> collectAnchors(const genomics::Read &read);
    std::vector<align::Chain> planRead(const genomics::Read &read);
    std::vector<genomics::Mapping>
    finishRead(std::vector<genomics::Mapping> &mappings);
    genomics::PairMapping
    pairFromCandidates(const std::vector<genomics::Mapping> &cands1,
                       const std::vector<genomics::Mapping> &cands2);

    const genomics::Reference &ref_;
    Mm2LiteParams params_;
    std::shared_ptr<const MinimizerIndex> index_;
    util::StageTimers timers_;
    DpWork dpWork_;
    /**
     * DP working set reused across every alignment this engine runs
     * (drivers keep one Mm2Lite per worker, so the fallback path of a
     * whole batch shares one allocation).
     */
    align::AlignScratch alignScratch_;
    /** Lane-major working set of the interleaved batch DP engine. */
    align::BatchAlignScratch batchScratch_;
};

} // namespace baseline
} // namespace gpx

#endif // GPX_BASELINE_MM2LITE_HH
