/**
 * @file
 * Minimizer index over the reference genome.
 *
 * This is the seeding substrate of the Minimap2-like baseline mapper
 * ("MM2" in the paper's evaluation). Canonical k-mers are selected by a
 * (w,k) minimizer scheme and stored in a sorted (hash, location) table.
 */

#ifndef GPX_BASELINE_MINIMIZER_INDEX_HH
#define GPX_BASELINE_MINIMIZER_INDEX_HH

#include <span>
#include <vector>

#include "genomics/reference.hh"
#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace baseline {

/** Minimizer scheme parameters (Minimap2 sr preset uses k=21, w=11). */
struct MinimizerParams
{
    u32 k = 21;
    u32 w = 11;
    /** Drop minimizers occurring more often than this (like mm2 -f). */
    u32 maxOccurrences = 500;
};

/** One minimizer: canonical k-mer hash plus its position and strand. */
struct Minimizer
{
    u64 hash = 0;
    u64 pos = 0;       ///< position of the k-mer's first base
    bool reverse = false; ///< canonical k-mer is the reverse complement
};

/**
 * Extract the minimizers of a sequence (used for both index and reads).
 * The k-mer hashes roll directly over the packed 2-bit words; any
 * DnaSequence converts implicitly to the view.
 */
std::vector<Minimizer> extractMinimizers(const genomics::DnaView &seq,
                                         const MinimizerParams &params);

/**
 * The original per-base implementation (std::deque monotonic queue),
 * retained verbatim as the oracle the property tests and the
 * micro_kernels before/after rows compare against. Must produce a
 * stream identical to extractMinimizers().
 */
std::vector<Minimizer> extractMinimizersScalar(const genomics::DnaView &seq,
                                               const MinimizerParams &params);

/** Sorted minimizer table over a reference genome. */
class MinimizerIndex
{
  public:
    /** Index entry: reference position and strand of one occurrence. */
    struct Entry
    {
        GlobalPos pos;
        bool reverse;
    };

    MinimizerIndex(const genomics::Reference &ref,
                   const MinimizerParams &params);

    const MinimizerParams &params() const { return params_; }

    /** All occurrences of a minimizer hash (empty if filtered/absent). */
    std::span<const Entry> lookup(u64 hash) const;

    u64 numEntries() const { return entries_.size(); }

  private:
    MinimizerParams params_;
    std::vector<u64> hashes_;   ///< sorted unique hashes
    std::vector<u64> offsets_;  ///< CSR offsets into entries_
    std::vector<Entry> entries_;
};

} // namespace baseline
} // namespace gpx

#endif // GPX_BASELINE_MINIMIZER_INDEX_HH
