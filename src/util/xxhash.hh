/**
 * @file
 * Self-contained implementation of the xxHash non-cryptographic hash
 * family (XXH32 and XXH64). GenPair encodes every 50 bp seed into a 32-bit
 * value with xxHash (paper §4.3); the hardware Partitioned Seeding module
 * pipelines exactly this function (§5.1).
 *
 * The implementation follows the canonical specification by Yann Collet
 * (https://github.com/Cyan4973/xxHash) and is bit-exact with the reference
 * vectors, which the unit tests verify.
 */

#ifndef GPX_UTIL_XXHASH_HH
#define GPX_UTIL_XXHASH_HH

#include <cstddef>

#include "util/types.hh"

namespace gpx {
namespace util {

/**
 * Compute the 32-bit xxHash of a byte buffer.
 *
 * @param data Pointer to the input bytes.
 * @param len Number of input bytes.
 * @param seed Hash seed (0 for the GenPair SeedMap).
 * @return The XXH32 digest.
 */
u32 xxh32(const void *data, std::size_t len, u32 seed = 0);

/**
 * Compute the 64-bit xxHash of a byte buffer.
 *
 * @param data Pointer to the input bytes.
 * @param len Number of input bytes.
 * @param seed Hash seed.
 * @return The XXH64 digest.
 */
u64 xxh64(const void *data, std::size_t len, u64 seed = 0);

/** Hash a single 64-bit word (convenience wrapper over xxh64). */
u64 xxh64Word(u64 word, u64 seed = 0);

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_XXHASH_HH
