#include "util/md5.hh"

#include <bit>
#include <cstring>

namespace gpx {
namespace util {

namespace {

constexpr u32 kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
};

// floor(2^32 * abs(sin(i+1))), the RFC 1321 constant table.
constexpr u32 kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf,
    0x4787c62a, 0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af,
    0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e,
    0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6,
    0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039,
    0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244, 0x432aff97,
    0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d,
    0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
};

} // namespace

Md5::Md5()
{
    state_[0] = 0x67452301;
    state_[1] = 0xefcdab89;
    state_[2] = 0x98badcfe;
    state_[3] = 0x10325476;
}

void
Md5::processBlock(const u8 *block)
{
    u32 m[16];
    for (int i = 0; i < 16; ++i)
        std::memcpy(&m[i], block + 4 * i, 4);

    u32 a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    for (u32 i = 0; i < 64; ++i) {
        u32 f;
        u32 g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) & 15;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) & 15;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) & 15;
        }
        u32 tmp = d;
        d = c;
        c = b;
        b = b + std::rotl(a + f + kSine[i] + m[g], static_cast<int>(
                                                       kShift[i]));
        a = tmp;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
}

void
Md5::update(const void *data, std::size_t len)
{
    const u8 *bytes = static_cast<const u8 *>(data);
    totalBytes_ += len;
    if (buffered_ > 0) {
        std::size_t take = std::min<std::size_t>(len, 64 - buffered_);
        std::memcpy(buffer_ + buffered_, bytes, take);
        buffered_ += take;
        bytes += take;
        len -= take;
        if (buffered_ == 64) {
            processBlock(buffer_);
            buffered_ = 0;
        }
    }
    while (len >= 64) {
        processBlock(bytes);
        bytes += 64;
        len -= 64;
    }
    if (len > 0) {
        std::memcpy(buffer_, bytes, len);
        buffered_ = len;
    }
}

std::string
Md5::hexDigest()
{
    u64 bitLen = totalBytes_ * 8;
    u8 pad[72] = { 0x80 };
    std::size_t padLen =
        (buffered_ < 56) ? 56 - buffered_ : 120 - buffered_;
    update(pad, padLen);
    // update() of the length must not re-enter padding accounting:
    // buffered_ is now 56, so these 8 bytes complete the final block.
    u8 lenBytes[8];
    std::memcpy(lenBytes, &bitLen, 8);
    update(lenBytes, 8);

    static const char hex[] = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (u32 word : state_) {
        for (int b = 0; b < 4; ++b) {
            u8 byte = static_cast<u8>(word >> (8 * b));
            out.push_back(hex[byte >> 4]);
            out.push_back(hex[byte & 15]);
        }
    }
    return out;
}

std::string
md5Hex(const void *data, std::size_t len)
{
    Md5 md5;
    md5.update(data, len);
    return md5.hexDigest();
}

std::string
md5Hex(const std::string &s)
{
    return md5Hex(s.data(), s.size());
}

} // namespace util
} // namespace gpx
