/**
 * @file
 * util::Channel<T>: the bounded MPMC hand-off queue of the async I/O
 * spine.
 *
 * The PR 2 streaming pipeline connected its three stages with
 * single-slot, single-producer/single-consumer hand-off slots — enough
 * to double-buffer one reader against one writer, structurally unable
 * to fan work out to N parser threads or fan results back in. Channel
 * generalizes the hand-off: any number of producers push(), any number
 * of consumers pop(), capacity bounds the in-flight items (memory and
 * backpressure in one knob), and close() gives the whole pipeline a
 * deterministic drain: producers learn the downstream is gone (push
 * returns false), consumers drain what is queued and then see
 * end-of-stream (nullopt).
 *
 * Every blocking edge is accounted: time a producer spends waiting for
 * space and time a consumer spends waiting for an item accumulate into
 * stall counters, so a driver can report *which* stage of its pipeline
 * is the bottleneck (reader-starved vs writer-bound) instead of just a
 * slower wall clock — the numbers behind the reader/writer-stall
 * fields of PipelineStats and `gpx_map --stats-json`.
 *
 * Mutex + two condvars, by design: the queues carry whole chunks of
 * work (thousands of read pairs each), so hand-off cost is amortized
 * across the chunk and lock-free cleverness would buy nothing but TSan
 * risk. All operations are thread-safe; the stall accessors are exact
 * once the threads touching the channel have been joined.
 */

#ifndef GPX_UTIL_CHANNEL_HH
#define GPX_UTIL_CHANNEL_HH

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/fault.hh"
#include "util/types.hh"

namespace gpx {
namespace util {

/** Aggregate wait accounting of one channel side (push or pop). */
struct ChannelStall
{
    double seconds = 0; ///< total time spent blocked
    u64 waits = 0;      ///< operations that had to block at all
};

template <typename T>
class Channel
{
  public:
    /** @param capacity In-flight item bound; clamped to >= 1. */
    explicit Channel(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /**
     * Enqueue @p value, blocking while the channel is full. Returns
     * false — with the value dropped — once the channel is closed:
     * the producer's signal to stop (its consumer has aborted or
     * drained).
     */
    bool
    push(T value)
    {
        // Chaos hook: a delay rule here stalls one hand-off edge and
        // shifts every stage's relative timing (the race amplifier the
        // chaos CI sweep runs the suites under). Failure actions make
        // the push behave as if the channel were closed.
        if (checkFault("chan.push"))
            return false;
        std::unique_lock<std::mutex> lock(mu_);
        if (queue_.size() >= capacity_ && !closed_) {
            const auto begin = Clock::now();
            notFull_.wait(lock, [&] {
                return queue_.size() < capacity_ || closed_;
            });
            pushStall_.seconds += sinceSeconds(begin);
            ++pushStall_.waits;
        }
        if (closed_)
            return false;
        queue_.push_back(std::move(value));
        notEmpty_.notify_one();
        return true;
    }

    /** Non-blocking push; false when full or closed. */
    bool
    tryPush(T &value)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || queue_.size() >= capacity_)
            return false;
        queue_.push_back(std::move(value));
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeue the next item, blocking while the channel is empty.
     * After close(), remaining items still drain in FIFO order;
     * nullopt means closed-and-drained (end of stream).
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (queue_.empty() && !closed_) {
            const auto begin = Clock::now();
            notEmpty_.wait(lock,
                           [&] { return !queue_.empty() || closed_; });
            popStall_.seconds += sinceSeconds(begin);
            ++popStall_.waits;
        }
        if (queue_.empty())
            return std::nullopt;
        std::optional<T> out(std::move(queue_.front()));
        queue_.pop_front();
        notFull_.notify_one();
        return out;
    }

    /** Non-blocking pop; nullopt when nothing is queued right now. */
    std::optional<T>
    tryPop()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.empty())
            return std::nullopt;
        std::optional<T> out(std::move(queue_.front()));
        queue_.pop_front();
        notFull_.notify_one();
        return out;
    }

    /**
     * Close the channel: every blocked producer wakes and fails, every
     * blocked consumer wakes and drains. Idempotent; safe from any
     * thread (including a destructor racing a stuck producer).
     */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return queue_.size();
    }

    std::size_t capacity() const { return capacity_; }

    /** Producer-side wait accounting (time blocked on a full queue). */
    ChannelStall
    pushStall() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return pushStall_;
    }

    /** Consumer-side wait accounting (time blocked on an empty queue). */
    ChannelStall
    popStall() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return popStall_;
    }

  private:
    using Clock = std::chrono::steady_clock;

    static double
    sinceSeconds(Clock::time_point begin)
    {
        return std::chrono::duration<double>(Clock::now() - begin)
            .count();
    }

    mutable std::mutex mu_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> queue_;
    const std::size_t capacity_;
    bool closed_ = false;
    ChannelStall pushStall_;
    ChannelStall popStall_;
};

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_CHANNEL_HH
