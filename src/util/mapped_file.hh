/**
 * @file
 * Read-only memory-mapped file: the zero-copy substrate of the SeedMap
 * v2 image path. A MappedFile's pages are file-backed and kernel-shared,
 * so every worker process/thread serving the same index image shares one
 * physical copy and opening costs no allocation or stream copy.
 */

#ifndef GPX_UTIL_MAPPED_FILE_HH
#define GPX_UTIL_MAPPED_FILE_HH

#include <optional>
#include <string>

#include "util/types.hh"

namespace gpx {
namespace util {

/** RAII read-only mmap of a whole file. Movable, not copyable. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Map @p path read-only. Returns nullopt (and sets @p error when
     * non-null) if the file cannot be opened, stat'ed or mapped. An
     * empty file maps successfully with size() == 0.
     */
    static std::optional<MappedFile> open(const std::string &path,
                                          std::string *error = nullptr);

    /** First mapped byte; nullptr when empty or default-constructed. */
    const u8 *data() const { return static_cast<const u8 *>(addr_); }
    /** Mapped length in bytes. */
    u64 size() const { return size_; }
    /** True once open() succeeded (even for an empty file). */
    bool valid() const { return valid_; }

    /**
     * Advise the kernel the whole mapping will be read soon
     * (best-effort; a no-op where madvise is unavailable).
     */
    void prefetch() const;

  private:
    void *addr_ = nullptr;
    u64 size_ = 0;
    bool valid_ = false;
};

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_MAPPED_FILE_HH
