/**
 * @file
 * Block-oriented byte sources: the raw-ingest layer under the FASTQ
 * spine.
 *
 * The streaming pipeline wants its file bytes in large blocks so that
 * (a) decompression and record-boundary scanning amortize their
 * per-call cost, and (b) the read() syscalls can be prefetched on a
 * dedicated thread ahead of the parse. ByteSource is the one-method
 * interface that lets those concerns stack:
 *
 *   IstreamSource  — pulls fixed-size blocks off any std::istream
 *   PrefetchSource — decorator: a background thread pulls from the
 *                    inner source into a 2-slot util::Channel (double
 *                    buffering), so file/network latency overlaps
 *                    inflate + scan downstream
 *   AutoInflateSource (gzip_stream.hh) — decorator: transparently
 *                    inflates gzip input detected by magic bytes
 *
 * LineReader sits on top and restores line orientation with exactly
 * std::getline's semantics (a final line without a trailing newline
 * still counts), which is what keeps the parallel FASTQ parser
 * byte-for-byte faithful to the historical single-threaded parser.
 */

#ifndef GPX_UTIL_BYTE_STREAM_HH
#define GPX_UTIL_BYTE_STREAM_HH

#include <iosfwd>
#include <string>
#include <thread>

#include "util/channel.hh"
#include "util/types.hh"

namespace gpx {
namespace util {

/** Pull-based block source; see file comment for the stack. */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;

    /**
     * Fill @p block with the next chunk of bytes (any nonzero size).
     * False means end of stream — or failure, in which case error()
     * is non-empty. On false the block's contents are unspecified;
     * callers must not consume them.
     */
    virtual bool read(std::string &block) = 0;

    /** Diagnostic of a failed read (empty while healthy). */
    virtual const std::string &
    error() const
    {
        static const std::string kNone;
        return kNone;
    }
};

/** A single in-memory block, yielded once (slice parsing). */
class StringSource : public ByteSource
{
  public:
    explicit StringSource(std::string text) : text_(std::move(text)) {}

    bool
    read(std::string &block) override
    {
        if (done_)
            return false;
        done_ = true;
        block = std::move(text_);
        return !block.empty();
    }

  private:
    std::string text_;
    bool done_ = false;
};

/** Blocks pulled off a std::istream with is.read(). */
class IstreamSource : public ByteSource
{
  public:
    static constexpr std::size_t kDefaultBlockBytes = 256 * 1024;

    explicit IstreamSource(std::istream &is,
                           std::size_t block_bytes = kDefaultBlockBytes)
        : is_(is), blockBytes_(block_bytes == 0 ? 1 : block_bytes)
    {
    }

    bool read(std::string &block) override;
    const std::string &error() const override { return error_; }

  private:
    std::istream &is_;
    std::size_t blockBytes_;
    std::string error_; ///< injected-fault diagnostic only
};

/**
 * Decorator: a background thread reads the inner source ahead of the
 * consumer through a 2-slot channel (the double buffer). The consumer
 * sees the same block stream; read latency hides behind downstream
 * work. The inner source is touched only by the prefetch thread after
 * construction.
 */
class PrefetchSource : public ByteSource
{
  public:
    explicit PrefetchSource(ByteSource &inner, std::size_t slots = 2);
    ~PrefetchSource() override;

    bool read(std::string &block) override;
    const std::string &error() const override { return error_; }

  private:
    ByteSource &inner_;
    Channel<std::string> blocks_;
    std::thread thread_;
    /** Written by the prefetch thread before it closes the channel,
     *  read by the consumer only after the closed channel drains. */
    std::string innerError_;
    std::string error_;
};

/**
 * std::getline over a ByteSource, byte-exact with getline(istream&):
 * lines are split on '\n' (consumed, never returned), and a trailing
 * run of bytes without a final newline is still one last line.
 */
class LineReader
{
  public:
    explicit LineReader(ByteSource &source) : source_(source) {}

    /** False at end of stream (or source error; check error()). */
    bool getline(std::string &line);

    /** Source failure diagnostic (empty on clean EOF). */
    const std::string &error() const { return source_.error(); }

  private:
    ByteSource &source_;
    std::string buffer_;
    std::size_t pos_ = 0;
    bool eof_ = false;
};

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_BYTE_STREAM_HH
