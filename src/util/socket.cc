#include "util/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

#include "util/fault.hh"

namespace gpx {
namespace util {

namespace {

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

void
setError(std::string *error, const std::string &msg)
{
    if (error != nullptr)
        *error = msg;
}

} // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket &&other) noexcept
    : fd_(std::exchange(other.fd_, -1))
{
}

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

bool
Socket::readExact(void *buf, u64 len, bool *clean_eof) const
{
    IoStatus status = readExactDeadline(buf, len, -1);
    if (clean_eof != nullptr)
        *clean_eof = status.cleanEof;
    return status.ok;
}

Socket::IoStatus
Socket::readExactDeadline(void *buf, u64 len, i64 timeout_ms) const
{
    using Clock = std::chrono::steady_clock;
    IoStatus status;
    if (checkFault("socket.read"))
        return status;
    const auto deadline =
        timeout_ms >= 0 ? Clock::now() + std::chrono::milliseconds(
                                             timeout_ms)
                        : Clock::time_point::max();
    u8 *p = static_cast<u8 *>(buf);
    while (status.transferred < len) {
        if (timeout_ms >= 0) {
            // Monotonic budget for the whole transfer: poll with the
            // *remaining* time so partial progress never re-arms it.
            auto left = std::chrono::duration_cast<
                            std::chrono::milliseconds>(deadline -
                                                       Clock::now())
                            .count();
            if (left <= 0) {
                status.timedOut = true;
                return status;
            }
            pollfd pfd{ fd_, POLLIN, 0 };
            int ready = ::poll(&pfd, 1,
                               static_cast<int>(
                                   std::min<i64>(left, INT32_MAX)));
            if (ready == 0) {
                status.timedOut = true;
                return status;
            }
            if (ready < 0) {
                if (errno == EINTR)
                    continue;
                return status;
            }
        }
        ssize_t n =
            ::read(fd_, p + status.transferred, len - status.transferred);
        if (n == 0) {
            status.cleanEof = status.transferred == 0;
            return status;
        }
        if (n < 0) {
            if (errno == EINTR ||
                (timeout_ms >= 0 &&
                 (errno == EAGAIN || errno == EWOULDBLOCK)))
                continue; // spurious poll wakeup; the deadline governs
            return status;
        }
        status.transferred += static_cast<u64>(n);
    }
    status.ok = true;
    return status;
}

bool
Socket::writeExact(const void *buf, u64 len) const
{
    u64 writable = len;
    if (auto hit = checkFaultBytes("socket.write", len)) {
        if (hit.kind != FaultHit::kShort)
            return false;
        // Short-write fault: transfer a strict prefix, then fail — the
        // peer sees a torn frame, exactly like a writer dying mid-send.
        writable = len / 2;
    }
    const u8 *p = static_cast<const u8 *>(buf);
    u64 done = 0;
    while (done < writable) {
        // MSG_NOSIGNAL: a peer that hung up turns into an EPIPE error
        // return instead of a process-killing SIGPIPE.
        ssize_t n = ::send(fd_, p + done, writable - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<u64>(n);
    }
    return done == len;
}

void
Socket::setSendTimeout(u32 timeout_ms) const
{
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void
Socket::setRecvTimeout(u32 timeout_ms) const
{
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

std::optional<Socket>
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        setError(error, "unix socket path too long: " + path);
        return std::nullopt;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) {
        setError(error, errnoString("socket(AF_UNIX)"));
        return std::nullopt;
    }
    ::unlink(path.c_str()); // stale socket file from a previous run
    if (::bind(s.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setError(error, errnoString(("bind " + path).c_str()));
        return std::nullopt;
    }
    if (::listen(s.fd(), SOMAXCONN) != 0) {
        setError(error, errnoString("listen"));
        return std::nullopt;
    }
    return s;
}

std::optional<Socket>
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        setError(error, "unix socket path too long: " + path);
        return std::nullopt;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) {
        setError(error, errnoString("socket(AF_UNIX)"));
        return std::nullopt;
    }
    if (::connect(s.fd(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setError(error, errnoString(("connect " + path).c_str()));
        return std::nullopt;
    }
    return s;
}

std::optional<Socket>
listenTcp(u16 port, std::string *error, u16 *bound_port)
{
    Socket s(::socket(AF_INET, SOCK_STREAM, 0));
    if (!s.valid()) {
        setError(error, errnoString("socket(AF_INET)"));
        return std::nullopt;
    }
    int one = 1;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(s.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setError(error, errnoString("bind"));
        return std::nullopt;
    }
    if (::listen(s.fd(), SOMAXCONN) != 0) {
        setError(error, errnoString("listen"));
        return std::nullopt;
    }
    if (bound_port != nullptr) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(s.fd(), reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0) {
            setError(error, errnoString("getsockname"));
            return std::nullopt;
        }
        *bound_port = ntohs(bound.sin_port);
    }
    return s;
}

std::optional<Socket>
connectTcp(const std::string &host, u16 port, std::string *error)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        setError(error, "not an IPv4 address: " + host);
        return std::nullopt;
    }
    Socket s(::socket(AF_INET, SOCK_STREAM, 0));
    if (!s.valid()) {
        setError(error, errnoString("socket(AF_INET)"));
        return std::nullopt;
    }
    if (::connect(s.fd(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setError(error, errnoString(("connect " + host).c_str()));
        return std::nullopt;
    }
    return s;
}

std::optional<Socket>
acceptOne(const Socket &listener, std::string *error)
{
    for (;;) {
        int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno == EINTR)
            continue;
        // EBADF/EINVAL after the listener was shut down or closed is
        // the accept loop's normal exit, not an error worth a message.
        setError(error, errnoString("accept"));
        return std::nullopt;
    }
}

} // namespace util
} // namespace gpx
