#include "util/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

namespace gpx {
namespace util {

namespace {

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

void
setError(std::string *error, const std::string &msg)
{
    if (error != nullptr)
        *error = msg;
}

} // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket &&other) noexcept
    : fd_(std::exchange(other.fd_, -1))
{
}

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

bool
Socket::readExact(void *buf, u64 len, bool *clean_eof) const
{
    if (clean_eof != nullptr)
        *clean_eof = false;
    u8 *p = static_cast<u8 *>(buf);
    u64 done = 0;
    while (done < len) {
        ssize_t n = ::read(fd_, p + done, len - done);
        if (n == 0) {
            if (done == 0 && clean_eof != nullptr)
                *clean_eof = true;
            return false;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<u64>(n);
    }
    return true;
}

bool
Socket::writeExact(const void *buf, u64 len) const
{
    const u8 *p = static_cast<const u8 *>(buf);
    u64 done = 0;
    while (done < len) {
        // MSG_NOSIGNAL: a peer that hung up turns into an EPIPE error
        // return instead of a process-killing SIGPIPE.
        ssize_t n = ::send(fd_, p + done, len - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<u64>(n);
    }
    return true;
}

std::optional<Socket>
listenUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        setError(error, "unix socket path too long: " + path);
        return std::nullopt;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) {
        setError(error, errnoString("socket(AF_UNIX)"));
        return std::nullopt;
    }
    ::unlink(path.c_str()); // stale socket file from a previous run
    if (::bind(s.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setError(error, errnoString(("bind " + path).c_str()));
        return std::nullopt;
    }
    if (::listen(s.fd(), SOMAXCONN) != 0) {
        setError(error, errnoString("listen"));
        return std::nullopt;
    }
    return s;
}

std::optional<Socket>
connectUnix(const std::string &path, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        setError(error, "unix socket path too long: " + path);
        return std::nullopt;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) {
        setError(error, errnoString("socket(AF_UNIX)"));
        return std::nullopt;
    }
    if (::connect(s.fd(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setError(error, errnoString(("connect " + path).c_str()));
        return std::nullopt;
    }
    return s;
}

std::optional<Socket>
listenTcp(u16 port, std::string *error, u16 *bound_port)
{
    Socket s(::socket(AF_INET, SOCK_STREAM, 0));
    if (!s.valid()) {
        setError(error, errnoString("socket(AF_INET)"));
        return std::nullopt;
    }
    int one = 1;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(s.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setError(error, errnoString("bind"));
        return std::nullopt;
    }
    if (::listen(s.fd(), SOMAXCONN) != 0) {
        setError(error, errnoString("listen"));
        return std::nullopt;
    }
    if (bound_port != nullptr) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(s.fd(), reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0) {
            setError(error, errnoString("getsockname"));
            return std::nullopt;
        }
        *bound_port = ntohs(bound.sin_port);
    }
    return s;
}

std::optional<Socket>
connectTcp(const std::string &host, u16 port, std::string *error)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        setError(error, "not an IPv4 address: " + host);
        return std::nullopt;
    }
    Socket s(::socket(AF_INET, SOCK_STREAM, 0));
    if (!s.valid()) {
        setError(error, errnoString("socket(AF_INET)"));
        return std::nullopt;
    }
    if (::connect(s.fd(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setError(error, errnoString(("connect " + host).c_str()));
        return std::nullopt;
    }
    return s;
}

std::optional<Socket>
acceptOne(const Socket &listener, std::string *error)
{
    for (;;) {
        int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno == EINTR)
            continue;
        // EBADF/EINVAL after the listener was shut down or closed is
        // the accept loop's normal exit, not an error worth a message.
        setError(error, errnoString("accept"));
        return std::nullopt;
    }
}

} // namespace util
} // namespace gpx
