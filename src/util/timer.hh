/**
 * @file
 * Wall-clock stage timers. The baseline mapper uses StageTimers to produce
 * the Minimap2-style execution-time breakdown of paper Fig. 1.
 */

#ifndef GPX_UTIL_TIMER_HH
#define GPX_UTIL_TIMER_HH

#include <chrono>
#include <map>
#include <string>

namespace gpx {
namespace util {

/** Monotonic wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Accumulates wall time per named stage. */
class StageTimers
{
  public:
    /** RAII guard that charges its lifetime to one stage. */
    class Scope
    {
      public:
        Scope(StageTimers &timers, const std::string &stage)
            : timers_(timers), stage_(stage)
        {
        }
        ~Scope() { timers_.add(stage_, watch_.seconds()); }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        StageTimers &timers_;
        std::string stage_;
        Stopwatch watch_;
    };

    void add(const std::string &stage, double secs) { times_[stage] += secs; }

    double
    total() const
    {
        double t = 0;
        for (const auto &[k, v] : times_)
            t += v;
        return t;
    }

    double
    seconds(const std::string &stage) const
    {
        auto it = times_.find(stage);
        return it == times_.end() ? 0.0 : it->second;
    }

    /** Fraction of total time spent in a stage (0 when nothing ran). */
    double
    fraction(const std::string &stage) const
    {
        double t = total();
        return t > 0 ? seconds(stage) / t : 0.0;
    }

    const std::map<std::string, double> &all() const { return times_; }

    void clear() { times_.clear(); }

  private:
    std::map<std::string, double> times_;
};

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_TIMER_HH
