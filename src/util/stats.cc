#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace gpx {
namespace util {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = max_ = x;
        return;
    }
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, u32 bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    gpx_assert(hi > lo && bins > 0, "bad histogram bounds");
}

void
Histogram::add(double x, u64 weight)
{
    double frac = (x - lo_) / (hi_ - lo_);
    i64 bin = static_cast<i64>(frac * counts_.size());
    bin = std::clamp<i64>(bin, 0, static_cast<i64>(counts_.size()) - 1);
    counts_[static_cast<std::size_t>(bin)] += weight;
    total_ += weight;
}

double
Histogram::binLo(u32 bin) const
{
    return lo_ + (hi_ - lo_) * bin / static_cast<double>(counts_.size());
}

std::vector<double>
Histogram::cdf() const
{
    std::vector<double> out(counts_.size(), 0.0);
    u64 acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        acc += counts_[i];
        out[i] = total_ ? static_cast<double>(acc) / total_ : 0.0;
    }
    return out;
}

double
Histogram::percentile(double frac) const
{
    u64 target = static_cast<u64>(frac * total_);
    u64 acc = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        acc += counts_[i];
        if (acc >= target)
            return binLo(static_cast<u32>(i));
    }
    return hi_;
}

double
exactPercentile(std::vector<double> samples, double frac)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    double idx = frac * (samples.size() - 1);
    std::size_t lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, samples.size() - 1);
    double t = idx - lo;
    return samples[lo] * (1.0 - t) + samples[hi] * t;
}

} // namespace util
} // namespace gpx
