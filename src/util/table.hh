/**
 * @file
 * Console table printer used by the bench harnesses so that every
 * regenerated paper table/figure prints in one consistent, diffable format.
 */

#ifndef GPX_UTIL_TABLE_HH
#define GPX_UTIL_TABLE_HH

#include <initializer_list>
#include <string>
#include <vector>

namespace gpx {
namespace util {

/**
 * Accumulates rows of strings and prints them with per-column alignment.
 * Numeric helpers format with a fixed precision so outputs are stable
 * across runs with identical seeds.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::initializer_list<std::string> headers);

    /** Begin a new row. Subsequent cell() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);
    /** Append an integer cell. */
    Table &cell(long long value);
    Table &cell(unsigned long long value);
    Table &cell(int value);
    Table &cell(unsigned value);
    Table &cell(std::size_t value);
    /** Append a floating-point cell with the given precision. */
    Table &cell(double value, int precision = 3);

    /** Render to stdout with a title banner. */
    void print(const std::string &title) const;

    /** Render to a string (used by tests). */
    std::string toString(const std::string &title) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double as "12.3K" / "4.56M" / "7.89G" style scaled string. */
std::string siFormat(double value, int precision = 2);

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_TABLE_HH
