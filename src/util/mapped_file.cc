#include "util/mapped_file.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/fault.hh"

#if defined(_WIN32)
#include <cstdio>
#include <vector>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace gpx {
namespace util {

namespace {

void
setError(std::string *error, const std::string &msg)
{
    if (error != nullptr)
        *error = msg;
}

} // namespace

MappedFile::~MappedFile()
{
#if !defined(_WIN32)
    if (addr_ != nullptr)
        ::munmap(addr_, size_);
#else
    delete[] static_cast<u8 *>(addr_);
#endif
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      valid_(std::exchange(other.valid_, false))
{
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
#if !defined(_WIN32)
        if (addr_ != nullptr)
            ::munmap(addr_, size_);
#else
        delete[] static_cast<u8 *>(addr_);
#endif
        addr_ = std::exchange(other.addr_, nullptr);
        size_ = std::exchange(other.size_, 0);
        valid_ = std::exchange(other.valid_, false);
    }
    return *this;
}

std::optional<MappedFile>
MappedFile::open(const std::string &path, std::string *error)
{
#if !defined(_WIN32)
    if (checkFault("mmap.open")) {
        setError(error, "cannot mmap " + path +
                            ": injected fault (mmap.open)");
        return std::nullopt;
    }
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setError(error, "cannot open " + path + ": " +
                            std::strerror(errno));
        return std::nullopt;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        setError(error, "cannot stat " + path + ": " +
                            std::strerror(errno));
        ::close(fd);
        return std::nullopt;
    }
    MappedFile mf;
    mf.size_ = static_cast<u64>(st.st_size);
    if (mf.size_ > 0) {
        void *addr = ::mmap(nullptr, mf.size_, PROT_READ, MAP_PRIVATE,
                            fd, 0);
        if (addr == MAP_FAILED) {
            setError(error, "cannot mmap " + path + ": " +
                                std::strerror(errno));
            ::close(fd);
            return std::nullopt;
        }
        mf.addr_ = addr;
    }
    // Re-check the size after mapping: a file truncated in the window
    // between fstat and mmap would otherwise hand out a mapping whose
    // tail pages SIGBUS on first touch. (Truncation *after* open is
    // the SigbusGuard's job — see SeedMapImage::open.)
    struct stat st2;
    if (::fstat(fd, &st2) != 0 || st2.st_size != st.st_size) {
        setError(error, path + " changed size while mapping (" +
                            std::to_string(st.st_size) + " -> " +
                            std::to_string(st2.st_size) +
                            " bytes); refusing truncated image");
        ::close(fd);
        return std::nullopt;
    }
    // The mapping holds its own reference to the file; the descriptor
    // is no longer needed.
    ::close(fd);
    mf.valid_ = true;
    return mf;
#else
    // Portability fallback: read the whole file into owned memory. Not
    // zero-copy, but keeps the open() contract identical.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        setError(error, "cannot open " + path);
        return std::nullopt;
    }
    // 64-bit seek/tell: a genome-scale index image exceeds 2 GiB.
    ::_fseeki64(f, 0, SEEK_END);
    long long size = ::_ftelli64(f);
    ::_fseeki64(f, 0, SEEK_SET);
    MappedFile mf;
    mf.size_ = size > 0 ? static_cast<u64>(size) : 0;
    if (mf.size_ > 0) {
        u8 *buf = new u8[mf.size_];
        if (std::fread(buf, 1, mf.size_, f) != mf.size_) {
            setError(error, "short read on " + path);
            delete[] buf;
            std::fclose(f);
            return std::nullopt;
        }
        mf.addr_ = buf;
    }
    std::fclose(f);
    mf.valid_ = true;
    return mf;
#endif
}

void
MappedFile::prefetch() const
{
#if !defined(_WIN32) && defined(MADV_WILLNEED)
    if (addr_ != nullptr)
        ::madvise(addr_, size_, MADV_WILLNEED);
#endif
}

} // namespace util
} // namespace gpx
