#include "util/table.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace gpx {
namespace util {

Table::Table(std::initializer_list<std::string> headers)
    : headers_(headers)
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    if (rows_.empty())
        rows_.emplace_back();
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(unsigned long long value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(unsigned value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(std::size_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return cell(os.str());
}

std::string
Table::toString(const std::string &title) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    os << "=== " << title << " ===\n";
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            std::string v = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << v;
        }
        os << "\n";
    };
    emitRow(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << "\n";
    for (const auto &row : rows_)
        emitRow(row);
    return os.str();
}

void
Table::print(const std::string &title) const
{
    std::fputs(toString(title).c_str(), stdout);
    std::fputc('\n', stdout);
}

std::string
siFormat(double value, int precision)
{
    const char *suffix = "";
    double v = value;
    if (std::fabs(v) >= 1e9) {
        v /= 1e9;
        suffix = "G";
    } else if (std::fabs(v) >= 1e6) {
        v /= 1e6;
        suffix = "M";
    } else if (std::fabs(v) >= 1e3) {
        v /= 1e3;
        suffix = "K";
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v << suffix;
    return os.str();
}

} // namespace util
} // namespace gpx
