/**
 * @file
 * Transparent gzip ingest for the byte-source stack.
 *
 * AutoInflateSource sniffs the first two bytes of its inner source for
 * the gzip magic (0x1f 0x8b). Plain input passes through untouched;
 * gzip input is inflated block-by-block, including multi-member files
 * (the concatenated-gzip convention bgzip and `cat a.gz b.gz` both
 * produce). Detection is per-stream and automatic, so every FASTQ
 * consumer in the tree — gpx_map, gpx_serve request blobs, the test
 * helpers — gains `.fastq.gz` support without a flag.
 *
 * zlib is an optional build dependency: all zlib usage lives in the
 * .cc behind GPX_HAVE_ZLIB. Without it the passthrough path still
 * works, and gzip input fails with an actionable "rebuild with zlib"
 * diagnostic instead of a parser error on binary garbage.
 */

#ifndef GPX_UTIL_GZIP_STREAM_HH
#define GPX_UTIL_GZIP_STREAM_HH

#include <memory>
#include <string>

#include "util/byte_stream.hh"

namespace gpx {
namespace util {

/** True when the binary was built with zlib (GPX_HAVE_ZLIB). */
bool gzipSupported();

/**
 * Gzip-compress @p plain (for tests and tools; requires zlib —
 * fatal if called without it).
 */
std::string gzipCompress(const std::string &plain, int level = 6);

/**
 * Decorator: passthrough for plain input, streaming inflate for gzip
 * input (detected by magic bytes). read() returns false on error with
 * error() describing the failure — corrupt stream, truncated member,
 * or gzip input in a binary built without zlib.
 */
class AutoInflateSource : public ByteSource
{
  public:
    explicit AutoInflateSource(ByteSource &inner);
    ~AutoInflateSource() override;

    bool read(std::string &block) override;
    const std::string &error() const override { return error_; }

  private:
    bool fill();
    bool readInflated(std::string &block);

    ByteSource &inner_;
    std::string pending_;   ///< compressed (or plain) bytes not yet consumed
    std::size_t pendingPos_ = 0;
    bool innerEof_ = false;
    bool sniffed_ = false;
    bool gzip_ = false;
    std::string error_;
    struct Inflater; ///< zlib state, defined only when GPX_HAVE_ZLIB
    std::unique_ptr<Inflater> inflater_;
};

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_GZIP_STREAM_HH
