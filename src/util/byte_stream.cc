#include "util/byte_stream.hh"

#include <cstring>
#include <istream>

#include "util/fault.hh"

namespace gpx {
namespace util {

bool
IstreamSource::read(std::string &block)
{
    if (checkFault("byte.read")) {
        error_ = "injected byte-source fault (byte.read)";
        return false;
    }
    block.resize(blockBytes_);
    is_.read(block.data(), static_cast<std::streamsize>(blockBytes_));
    const std::size_t got = static_cast<std::size_t>(is_.gcount());
    block.resize(got);
    return got > 0;
}

PrefetchSource::PrefetchSource(ByteSource &inner, std::size_t slots)
    : inner_(inner), blocks_(slots)
{
    thread_ = std::thread([this]() {
        std::string block;
        while (inner_.read(block)) {
            if (!blocks_.push(std::move(block)))
                return; // consumer closed the channel: abort
            block.clear();
        }
        innerError_ = inner_.error();
        blocks_.close();
    });
}

PrefetchSource::~PrefetchSource()
{
    // Unblock a producer stuck on a full channel, then reap it.
    blocks_.close();
    if (thread_.joinable())
        thread_.join();
}

bool
PrefetchSource::read(std::string &block)
{
    if (auto next = blocks_.pop()) {
        block = std::move(*next);
        return true;
    }
    // Channel closed and drained: the close() in the prefetch thread
    // happens-after its innerError_ store, so the read is safe.
    error_ = innerError_;
    return false;
}

bool
LineReader::getline(std::string &line)
{
    line.clear();
    for (;;) {
        if (pos_ < buffer_.size()) {
            const char *base = buffer_.data() + pos_;
            const std::size_t avail = buffer_.size() - pos_;
            const void *nl = std::memchr(base, '\n', avail);
            if (nl != nullptr) {
                const std::size_t len =
                    static_cast<std::size_t>(static_cast<const char *>(nl) -
                                             base);
                line.append(base, len);
                pos_ += len + 1; // consume the newline
                return true;
            }
            // Partial line: take what is buffered, keep reading.
            line.append(base, avail);
            pos_ = buffer_.size();
        }
        if (eof_)
            // getline semantics: a final newline-less run is a line;
            // nothing buffered and nothing read means end of stream.
            return !line.empty();
        buffer_.clear();
        pos_ = 0;
        if (!source_.read(buffer_)) {
            // The block's contents are unspecified on a failed read;
            // never serve them as input.
            buffer_.clear();
            eof_ = true;
        }
    }
}

} // namespace util
} // namespace gpx
