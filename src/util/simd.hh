/**
 * @file
 * Runtime SIMD backend selection for the batch kernels.
 *
 * The bit-parallel SHD mask kernels (align/shd_simd.cc) and the
 * interleaved banded-affine DP engine (align/affine_simd.cc) are
 * compiled three times — portable scalar, AVX2 and AVX-512 — behind
 * function-multiversioning target attributes, so the library builds
 * with no global -m flags and picks the widest ISA the host supports
 * at runtime (CPUID, resolved once). Every backend computes the same
 * per-lane arithmetic as the scalar oracles, so mapping output is
 * bit-identical no matter which one runs; only throughput differs.
 * The golden-corpus SAM digest is pinned under all three by
 * tests/test_simd.cc.
 *
 * `GPX_SIMD=scalar|avx2|avx512` overrides the choice (testing and the
 * CI portable-path job); requesting an ISA the host lacks clamps down
 * to the widest supported one with a warning.
 */

#ifndef GPX_UTIL_SIMD_HH
#define GPX_UTIL_SIMD_HH

#include <string>

#include "util/types.hh"

/**
 * True where the per-function target("avx2") / target("avx512...")
 * multiversioning the batch kernels use is available. Elsewhere the
 * kernels compile as plain portable code and detection reports scalar
 * only, so dispatch never reaches them.
 */
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GPX_SIMD_MULTIVERSION 1
#else
#define GPX_SIMD_MULTIVERSION 0
#endif

namespace gpx {
namespace util {

/** The batch-kernel instruction sets, widest last. */
enum class SimdBackend : u8
{
    Scalar = 0,
    Avx2,
    Avx512,
};

/** Stable lowercase name ("scalar", "avx2", "avx512"). */
const char *simdBackendName(SimdBackend backend);

/**
 * The backend every batch kernel dispatches on. Resolved once from
 * CPUID + the GPX_SIMD override on first use; constant afterwards
 * unless forceSimdBackend() intervenes.
 */
SimdBackend activeSimdBackend();

/** Widest backend the host CPU can execute (ignores GPX_SIMD). */
SimdBackend maxSimdBackend();

/**
 * One-line provenance of the active choice, e.g. "avx2 (cpuid)",
 * "scalar (GPX_SIMD override)", "avx2 (GPX_SIMD=avx512 unsupported,
 * clamped)". Surfaced in --stats-json, serve STATS and the bench
 * JSON context blocks so every recorded number names its code path.
 */
const std::string &simdBackendReason();

/**
 * Force the backend from code (tests and benches sweep lane widths
 * with this). Requests above maxSimdBackend() clamp; returns the
 * backend actually installed.
 */
SimdBackend forceSimdBackend(SimdBackend backend);

/** DP lanes interleaved per band sweep under @p b (1 / 8 / 16). */
inline u32
simdDpLanes(SimdBackend b)
{
    switch (b) {
    case SimdBackend::Avx512: return 16;
    case SimdBackend::Avx2: return 8;
    case SimdBackend::Scalar: break;
    }
    return 1;
}

/** SHD mask words (u64 lanes) processed per vector op (1 / 4 / 8). */
inline u32
simdMaskLanes(SimdBackend b)
{
    switch (b) {
    case SimdBackend::Avx512: return 8;
    case SimdBackend::Avx2: return 4;
    case SimdBackend::Scalar: break;
    }
    return 1;
}

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_SIMD_HH
