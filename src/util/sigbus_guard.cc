#include "util/sigbus_guard.hh"

#if !defined(_WIN32)

#include <csetjmp>
#include <csignal>
#include <mutex>

namespace gpx {
namespace util {

namespace {

/** Innermost armed landing pad of this thread (null = unguarded). */
thread_local sigjmp_buf *tActivePad = nullptr;

void
onSigbus(int signo)
{
    if (tActivePad != nullptr)
        siglongjmp(*tActivePad, 1);
    // Unguarded fault: restore the default disposition and re-raise so
    // the process still dies with the honest signal.
    std::signal(signo, SIG_DFL);
    ::raise(signo);
}

void
installHandler()
{
    static std::once_flag once;
    std::call_once(once, [] {
        struct sigaction sa = {};
        sa.sa_handler = onSigbus;
        sigemptyset(&sa.sa_mask);
        // No SA_RESTART: a guarded region's fault must reach us, and
        // SA_NODEFER keeps nested guards (fault inside a fault path)
        // deliverable.
        sa.sa_flags = SA_NODEFER;
        ::sigaction(SIGBUS, &sa, nullptr);
    });
}

} // namespace

bool
SigbusGuard::run(const std::function<void()> &fn)
{
    installHandler();
    sigjmp_buf pad;
    sigjmp_buf *outer = tActivePad;
    // Save the signal mask (second arg nonzero): siglongjmp out of the
    // handler must restore it or SIGBUS stays blocked forever after.
    if (sigsetjmp(pad, 1) != 0) {
        tActivePad = outer;
        return false;
    }
    tActivePad = &pad;
    fn();
    tActivePad = outer;
    return true;
}

} // namespace util
} // namespace gpx

#else // _WIN32

namespace gpx {
namespace util {

// No SIGBUS on Windows and MappedFile's fallback copies the file, so
// truncation after open cannot fault a mapped page.
bool
SigbusGuard::run(const std::function<void()> &fn)
{
    fn();
    return true;
}

} // namespace util
} // namespace gpx

#endif
