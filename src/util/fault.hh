/**
 * @file
 * util::FaultInjector: deterministic, process-wide fault injection for
 * the robustness wall.
 *
 * The serve path claims to survive slow clients, full disks, truncated
 * index images and stalled queues; none of those failures occur on a
 * healthy CI host, so without injection the recovery code is dead code
 * with green tests. FaultInjector threads *named injection points*
 * through the I/O layers (socket reads/writes, mmap validation, byte
 * sources, channel hand-offs, the SAM writer) and arms them from one
 * declarative plan:
 *
 *   GPX_FAULTS="socket.write:short@p=0.01,sam.write:enospc@after=1MiB"
 *   GPX_FAULTS_SEED=42
 *
 * Grammar (see docs/ARCHITECTURE.md "Failure modes & recovery"):
 *
 *   plan    := rule (',' rule)*
 *   rule    := point ':' action ['@' trigger]
 *   action  := fail | short | sigbus | enospc | eio | epipe
 *            | delay=<ms>[ms]
 *   trigger := p=<probability> | after=<N>[KiB|MiB] | every=<N>
 *            | nth=<N> | once            (default: always)
 *
 * Design constraints, in priority order:
 *  - zero cost disabled: every call site is one relaxed atomic load
 *    (no lock, no map lookup) when no plan is armed — the injector may
 *    sit on the hot SAM emission and socket paths;
 *  - deterministic: probabilistic triggers draw from one seeded
 *    util::Pcg32, so a failing chaos run replays with the same seed;
 *  - closed point set: configure() rejects a rule naming a point that
 *    no code path declares (kKnownPoints), so plans cannot silently
 *    rot when call sites move — scripts/check_fault_wall.py holds the
 *    registry and the call sites to the same contract.
 *
 * Delay actions are applied inside check() itself (the call site needs
 * no timing code); failure actions come back as a FaultHit for the
 * site to translate into its native error convention.
 */

#ifndef GPX_UTIL_FAULT_HH
#define GPX_UTIL_FAULT_HH

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "util/types.hh"

namespace gpx {
namespace util {

/** Verdict of one injection-point evaluation. */
struct FaultHit
{
    enum Kind : u8
    {
        kNone = 0, ///< no fault — proceed normally
        kFail,     ///< generic failure (also: sigbus alias)
        kShort,    ///< I/O should transfer a strict prefix, then fail
        kErrno,    ///< fail as-if a syscall set errno = value
    };
    Kind kind = kNone;
    u64 value = 0; ///< errno number for kErrno

    explicit operator bool() const { return kind != kNone; }
};

class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Fast-path gate: false until a non-empty plan is configured. */
    static bool
    armed()
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /**
     * Parse and arm @p plan (grammar in the file comment). An empty
     * plan disarms. Returns false — leaving the previous plan intact —
     * on a syntax error or an unknown point name, with the diagnostic
     * in @p error.
     */
    bool configure(const std::string &plan, u64 seed,
                   std::string *error = nullptr);

    /**
     * Arm from GPX_FAULTS / GPX_FAULTS_SEED. A malformed plan warns on
     * stderr and leaves the injector disarmed (a daemon must not die
     * on a typo'd env var; scripts/check_fault_wall.py vets the plans
     * CI actually runs).
     */
    void configureFromEnv();

    /** Disarm and forget all rules and counters. */
    void reset();

    /**
     * Evaluate injection point @p point. Count-based triggers advance
     * by one evaluation; kDelay rules sleep here. Call through the
     * free-function checkFault() so the disarmed path stays inline.
     */
    FaultHit check(const char *point);

    /**
     * Byte-counting form for write-path points: `after=N` triggers on
     * cumulative @p bytes instead of call count (so `after=1MiB` means
     * "once a megabyte has been written", not "after a megabyte of
     * calls").
     */
    FaultHit checkBytes(const char *point, u64 bytes);

    /** Times @p point fired (any action) since configure()/reset(). */
    u64 fires(const std::string &point) const;
    /** Times @p point was evaluated while armed. */
    u64 evaluations(const std::string &point) const;
    /** Total fires across all points. */
    u64 totalFires() const;

    /**
     * Every injection point any code path declares. configure()
     * rejects rules outside this set; check_fault_wall.py asserts the
     * set matches the call sites *and* that every entry is exercised
     * by at least one test plan.
     */
    static const std::vector<std::string> &knownPoints();

  private:
    FaultInjector() = default;

    static std::atomic<bool> armed_;
};

/**
 * Evaluate injection point @p point; the disabled path is one relaxed
 * atomic load. @p point must be a member of
 * FaultInjector::knownPoints() (enforced at configure time).
 */
inline FaultHit
checkFault(const char *point)
{
    if (!FaultInjector::armed())
        return {};
    return FaultInjector::instance().check(point);
}

/** Byte-counting form (write paths); see FaultInjector::checkBytes. */
inline FaultHit
checkFaultBytes(const char *point, u64 bytes)
{
    if (!FaultInjector::armed())
        return {};
    return FaultInjector::instance().checkBytes(point, bytes);
}

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_FAULT_HH
