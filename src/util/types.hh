/**
 * @file
 * Common fixed-width integer aliases and core genomic coordinate types
 * shared by every GenPairX module.
 */

#ifndef GPX_UTIL_TYPES_HH
#define GPX_UTIL_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace gpx
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/**
 * Global position on the concatenated reference genome. Chromosome
 * boundaries are resolved through genomics::Reference; all seed/location
 * machinery works in this flat coordinate space, mirroring the paper's
 * Location Table entries.
 */
using GlobalPos = u64;

/** Sentinel for "no position". */
constexpr GlobalPos kInvalidPos = ~GlobalPos{0};

} // namespace gpx

#endif // GPX_UTIL_TYPES_HH
