#include "util/simd.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace gpx {
namespace util {

namespace {

SimdBackend
detectMaxBackend()
{
#if GPX_SIMD_MULTIVERSION
    // The AVX-512 kernels are compiled with target("avx512f,avx512bw,
    // avx512dq,avx512vl"); require exactly that set.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl"))
        return SimdBackend::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return SimdBackend::Avx2;
#endif
    return SimdBackend::Scalar;
}

struct SimdState
{
    SimdBackend max = SimdBackend::Scalar;
    SimdBackend active = SimdBackend::Scalar;
    std::string reason;
};

SimdState
resolve()
{
    SimdState st;
    st.max = detectMaxBackend();
    st.active = st.max;
    st.reason = std::string(simdBackendName(st.max)) + " (cpuid)";

    const char *env = std::getenv("GPX_SIMD");
    if (!env || !*env)
        return st;

    SimdBackend want;
    std::string name(env);
    if (name == "scalar") {
        want = SimdBackend::Scalar;
    } else if (name == "avx2") {
        want = SimdBackend::Avx2;
    } else if (name == "avx512") {
        want = SimdBackend::Avx512;
    } else {
        gpx_warn("GPX_SIMD=%s not recognized (scalar|avx2|avx512); "
                 "using %s",
                 env, simdBackendName(st.max));
        st.reason = std::string(simdBackendName(st.max)) +
                    " (GPX_SIMD=" + name + " unrecognized)";
        return st;
    }
    if (want > st.max) {
        gpx_warn("GPX_SIMD=%s unsupported on this host; clamped to %s",
                 env, simdBackendName(st.max));
        st.reason = std::string(simdBackendName(st.max)) +
                    " (GPX_SIMD=" + name + " unsupported, clamped)";
        return st;
    }
    st.active = want;
    st.reason = std::string(simdBackendName(want)) + " (GPX_SIMD override)";
    return st;
}

SimdState &
state()
{
    static SimdState st = resolve();
    return st;
}

} // namespace

const char *
simdBackendName(SimdBackend backend)
{
    switch (backend) {
    case SimdBackend::Scalar: return "scalar";
    case SimdBackend::Avx2: return "avx2";
    case SimdBackend::Avx512: return "avx512";
    }
    return "?";
}

SimdBackend
activeSimdBackend()
{
    return state().active;
}

SimdBackend
maxSimdBackend()
{
    return state().max;
}

const std::string &
simdBackendReason()
{
    return state().reason;
}

SimdBackend
forceSimdBackend(SimdBackend backend)
{
    SimdState &st = state();
    if (backend > st.max) {
        st.active = st.max;
        st.reason = std::string(simdBackendName(st.max)) +
                    " (forced " + simdBackendName(backend) +
                    " unsupported, clamped)";
    } else {
        st.active = backend;
        st.reason =
            std::string(simdBackendName(backend)) + " (forced)";
    }
    return st.active;
}

} // namespace util
} // namespace gpx
