/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All data generators (genome, variants, reads, errors) draw from Pcg32 so
 * that every experiment in the repository is reproducible from a single
 * integer seed, which the benches print alongside their results.
 */

#ifndef GPX_UTIL_RNG_HH
#define GPX_UTIL_RNG_HH

#include <cmath>
#include <numbers>

#include "util/types.hh"

namespace gpx {
namespace util {

/**
 * PCG-XSH-RR 64/32 generator (O'Neill, 2014). Small state, excellent
 * statistical quality, and cheap enough to sit inside per-base loops of the
 * read simulator.
 */
class Pcg32
{
  public:
    /** Construct from a seed and an optional stream selector. */
    explicit Pcg32(u64 seed = 0x853c49e6748fea9bull, u64 stream = 1)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Next raw 32-bit output. */
    u32
    next()
    {
        u64 old = state_;
        state_ = old * 6364136223846793005ull + inc_;
        u32 xorshifted = static_cast<u32>(((old >> 18) ^ old) >> 27);
        u32 rot = static_cast<u32>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Uniform integer in [0, bound) using Lemire rejection. */
    u32
    below(u32 bound)
    {
        if (bound == 0)
            return 0;
        u64 m = static_cast<u64>(next()) * bound;
        u32 l = static_cast<u32>(m);
        if (l < bound) {
            u32 t = -bound % bound;
            while (l < t) {
                m = static_cast<u64>(next()) * bound;
                l = static_cast<u32>(m);
            }
        }
        return static_cast<u32>(m >> 32);
    }

    /** Uniform 64-bit integer in [0, bound). */
    u64
    below64(u64 bound)
    {
        if (bound == 0)
            return 0;
        // Two 32-bit draws; rejection keeps the distribution uniform.
        u64 threshold = (~bound + 1) % bound; // (2^64 - bound) mod bound
        while (true) {
            u64 r = (static_cast<u64>(next()) << 32) | next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Standard normal via Box-Muller. */
    double
    normal()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u1 = 0;
        while (u1 <= 1e-12)
            u1 = uniform();
        double u2 = uniform();
        double mag = std::sqrt(-2.0 * std::log(u1));
        spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
        haveSpare_ = true;
        return mag * std::cos(2.0 * std::numbers::pi * u2);
    }

    /** Normal with explicit mean and standard deviation. */
    double normal(double mean, double sd) { return mean + sd * normal(); }

    /**
     * Geometric-ish edit length: returns k >= 1 with P(k) proportional to
     * ext^(k-1). Used for INDEL length sampling.
     */
    u32
    extendLength(double ext, u32 max_len)
    {
        u32 k = 1;
        while (k < max_len && chance(ext))
            ++k;
        return k;
    }

  private:
    u64 state_ = 0;
    u64 inc_ = 0;
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_RNG_HH
