/**
 * @file
 * Lightweight statistics containers used by the profiling benches:
 * running mean/variance, fixed-bin histograms and percentile extraction.
 */

#ifndef GPX_UTIL_STATS_HH
#define GPX_UTIL_STATS_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace gpx {
namespace util {

/** Incremental mean/variance/min/max accumulator (Welford). */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    u64 count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Sample variance (n-1 denominator). */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    u64 n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram with uniform bins over [lo, hi); out-of-range samples are
 * clamped into the edge bins so nothing is silently dropped.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, u32 bins);

    void add(double x, u64 weight = 1);

    u64 totalCount() const { return total_; }
    u32 numBins() const { return static_cast<u32>(counts_.size()); }
    u64 binCount(u32 bin) const { return counts_.at(bin); }
    /** Left edge of a bin. */
    double binLo(u32 bin) const;

    /**
     * Cumulative fraction of samples with value <= the right edge of
     * each bin; used to print CDFs (paper Fig. 2).
     */
    std::vector<double> cdf() const;

    /** Value at the given cumulative fraction (bin-resolution). */
    double percentile(double frac) const;

  private:
    double lo_;
    double hi_;
    std::vector<u64> counts_;
    u64 total_ = 0;
};

/** Exact percentile over a stored sample vector (for small N). */
double exactPercentile(std::vector<double> samples, double frac);

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_STATS_HH
