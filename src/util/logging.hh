/**
 * @file
 * Minimal gem5-flavoured status/error reporting: panic() for internal
 * invariant violations, fatal() for user/configuration errors, warn() and
 * inform() for status messages.
 */

#ifndef GPX_UTIL_LOGGING_HH
#define GPX_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace gpx {
namespace util {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail {

inline void
format(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    format(os, rest...);
}

template <typename... Args>
std::string
cat(const Args &...args)
{
    std::ostringstream os;
    format(os, args...);
    return os.str();
}

} // namespace detail
} // namespace util
} // namespace gpx

/** Abort: an internal invariant was violated (a bug in this library). */
#define gpx_panic(...)                                                      \
    ::gpx::util::panicImpl(__FILE__, __LINE__,                              \
                           ::gpx::util::detail::cat(__VA_ARGS__))

/** Exit with an error: the condition is the caller's fault (bad config). */
#define gpx_fatal(...)                                                      \
    ::gpx::util::fatalImpl(::gpx::util::detail::cat(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define gpx_warn(...)                                                       \
    ::gpx::util::warnImpl(::gpx::util::detail::cat(__VA_ARGS__))

/** Informational message to stderr. */
#define gpx_inform(...)                                                     \
    ::gpx::util::informImpl(::gpx::util::detail::cat(__VA_ARGS__))

/** Assertion that survives release builds; panics with a message. */
#define gpx_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::gpx::util::panicImpl(                                         \
                __FILE__, __LINE__,                                         \
                ::gpx::util::detail::cat("assertion failed: " #cond " ",   \
                                         ##__VA_ARGS__));                   \
        }                                                                   \
    } while (0)

#endif // GPX_UTIL_LOGGING_HH
