/**
 * @file
 * Self-contained MD5 (RFC 1321). Not for security — it pins golden-test
 * digests in the format the bioinformatics world already speaks
 * (`md5sum out.sam`), so a corpus digest checked in here can be
 * re-verified from any shell.
 */

#ifndef GPX_UTIL_MD5_HH
#define GPX_UTIL_MD5_HH

#include <cstddef>
#include <string>

#include "util/types.hh"

namespace gpx {
namespace util {

/** Incremental MD5 digest. */
class Md5
{
  public:
    Md5();

    /** Absorb @p len bytes. */
    void update(const void *data, std::size_t len);

    /** Finalize and return the 32-char lowercase hex digest. */
    std::string hexDigest();

  private:
    void processBlock(const u8 *block);

    u32 state_[4];
    u64 totalBytes_ = 0;
    u8 buffer_[64];
    std::size_t buffered_ = 0;
};

/** One-shot convenience: MD5 hex digest of a byte buffer. */
std::string md5Hex(const void *data, std::size_t len);

/** One-shot convenience: MD5 hex digest of a string. */
std::string md5Hex(const std::string &s);

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_MD5_HH
