#include "util/fault.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <thread>

#include "util/rng.hh"

namespace gpx {
namespace util {

std::atomic<bool> FaultInjector::armed_{ false };

namespace {

/**
 * Every injection point, in registry order. A new call site must be
 * added here (configure() rejects its name otherwise) and must gain a
 * test plan (check_fault_wall.py fails the chaos job otherwise).
 */
const std::vector<std::string> kKnownPoints = {
    "socket.read",   ///< Socket::readExact — recv-side I/O error
    "socket.write",  ///< Socket::writeExact — short write / EPIPE
    "mmap.open",     ///< MappedFile::open — map failure
    "mmap.validate", ///< SeedMapImage::open — image rejected in validation
    "byte.read",     ///< IstreamSource::read — ingest byte-source error
    "chan.push",     ///< Channel::push — hand-off delay (stall chaos)
    "sam.write",     ///< SamWriter sink — ENOSPC / short write
    "serve.map",     ///< per-request map latency in the serve daemon
};

struct Trigger
{
    enum Kind : u8
    {
        kAlways,
        kProb,  ///< fire with probability p per evaluation
        kAfter, ///< fire once > n units (calls, or bytes) accumulated
        kEvery, ///< fire on every nth call
        kNth,   ///< fire on exactly the nth call
        kOnce,  ///< fire on the first call only
    };
    Kind kind = kAlways;
    double probability = 0;
    u64 n = 0;
};

struct Rule
{
    std::string point;
    FaultHit::Kind action = FaultHit::kFail;
    u64 errnoValue = 0;
    bool isDelay = false;
    u64 delayMs = 0;
    Trigger trigger;

    // Runtime trigger state.
    u64 calls = 0;
    u64 units = 0; ///< calls, or bytes through checkBytes()
    u64 fires = 0;
};

struct State
{
    std::mutex mu;
    std::vector<Rule> rules;
    std::map<std::string, u64> evaluations;
    Pcg32 rng;
};

State &
state()
{
    static State s;
    return s;
}

bool
parseU64(const std::string &text, u64 *out)
{
    if (text.empty())
        return false;
    u64 value = 0;
    std::size_t pos = 0;
    for (; pos < text.size(); ++pos) {
        char c = text[pos];
        if (c < '0' || c > '9')
            break;
        value = value * 10 + static_cast<u64>(c - '0');
    }
    if (pos == 0)
        return false;
    std::string suffix = text.substr(pos);
    if (suffix == "KiB")
        value <<= 10;
    else if (suffix == "MiB")
        value <<= 20;
    else if (!suffix.empty() && suffix != "ms")
        return false;
    *out = value;
    return true;
}

bool
parseRule(const std::string &text, Rule *rule, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = "fault rule '" + text + "': " + msg;
        return false;
    };

    std::size_t colon = text.find(':');
    if (colon == std::string::npos || colon == 0)
        return fail("expected point:action[@trigger]");
    rule->point = text.substr(0, colon);
    if (std::find(kKnownPoints.begin(), kKnownPoints.end(),
                  rule->point) == kKnownPoints.end())
        return fail("unknown injection point '" + rule->point + "'");

    std::string rest = text.substr(colon + 1);
    std::string action = rest;
    std::string trigger;
    std::size_t at = rest.find('@');
    if (at != std::string::npos) {
        action = rest.substr(0, at);
        trigger = rest.substr(at + 1);
    }

    if (action == "fail" || action == "sigbus") {
        rule->action = FaultHit::kFail;
    } else if (action == "short") {
        rule->action = FaultHit::kShort;
    } else if (action == "enospc") {
        rule->action = FaultHit::kErrno;
        rule->errnoValue = ENOSPC;
    } else if (action == "eio") {
        rule->action = FaultHit::kErrno;
        rule->errnoValue = EIO;
    } else if (action == "epipe") {
        rule->action = FaultHit::kErrno;
        rule->errnoValue = EPIPE;
    } else if (action.rfind("delay=", 0) == 0) {
        rule->isDelay = true;
        if (!parseU64(action.substr(6), &rule->delayMs))
            return fail("bad delay value");
    } else {
        return fail("unknown action '" + action + "'");
    }

    if (trigger.empty()) {
        rule->trigger.kind = Trigger::kAlways;
    } else if (trigger == "once") {
        rule->trigger.kind = Trigger::kOnce;
    } else if (trigger.rfind("p=", 0) == 0) {
        rule->trigger.kind = Trigger::kProb;
        char *end = nullptr;
        rule->trigger.probability =
            std::strtod(trigger.c_str() + 2, &end);
        if (end == nullptr || *end != '\0' ||
            rule->trigger.probability < 0 ||
            rule->trigger.probability > 1)
            return fail("bad probability");
    } else if (trigger.rfind("after=", 0) == 0) {
        rule->trigger.kind = Trigger::kAfter;
        if (!parseU64(trigger.substr(6), &rule->trigger.n))
            return fail("bad after= value");
    } else if (trigger.rfind("every=", 0) == 0) {
        rule->trigger.kind = Trigger::kEvery;
        if (!parseU64(trigger.substr(6), &rule->trigger.n) ||
            rule->trigger.n == 0)
            return fail("bad every= value");
    } else if (trigger.rfind("nth=", 0) == 0) {
        rule->trigger.kind = Trigger::kNth;
        if (!parseU64(trigger.substr(4), &rule->trigger.n) ||
            rule->trigger.n == 0)
            return fail("bad nth= value");
    } else {
        return fail("unknown trigger '" + trigger + "'");
    }
    return true;
}

/** Trigger evaluation; counters already advanced by the caller. */
bool
shouldFire(Rule &rule, Pcg32 &rng)
{
    switch (rule.trigger.kind) {
    case Trigger::kAlways:
        return true;
    case Trigger::kProb:
        return rng.chance(rule.trigger.probability);
    case Trigger::kAfter:
        return rule.units > rule.trigger.n;
    case Trigger::kEvery:
        return rule.calls % rule.trigger.n == 0;
    case Trigger::kNth:
        return rule.calls == rule.trigger.n;
    case Trigger::kOnce:
        return rule.fires == 0;
    }
    return false;
}

FaultHit
evaluate(const char *point, u64 units)
{
    State &s = state();
    u64 delayMs = 0;
    FaultHit hit;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        ++s.evaluations[point];
        for (auto &rule : s.rules) {
            if (rule.point != point)
                continue;
            ++rule.calls;
            rule.units += units;
            if (!shouldFire(rule, s.rng))
                continue;
            ++rule.fires;
            if (rule.isDelay) {
                delayMs += rule.delayMs;
            } else if (!hit) {
                hit.kind = rule.action;
                hit.value = rule.errnoValue;
            }
        }
    }
    // Sleep outside the lock: a delay rule must stall only its own
    // call site, not every other armed injection point.
    if (delayMs > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
    return hit;
}

} // namespace

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

bool
FaultInjector::configure(const std::string &plan, u64 seed,
                         std::string *error)
{
    std::vector<Rule> rules;
    std::size_t begin = 0;
    while (begin <= plan.size() && !plan.empty()) {
        std::size_t end = plan.find(',', begin);
        if (end == std::string::npos)
            end = plan.size();
        std::string text = plan.substr(begin, end - begin);
        if (!text.empty()) {
            Rule rule;
            if (!parseRule(text, &rule, error))
                return false;
            rules.push_back(std::move(rule));
        }
        begin = end + 1;
    }

    const bool arm = !rules.empty();
    State &s = state();
    {
        std::lock_guard<std::mutex> lock(s.mu);
        s.rules = std::move(rules);
        s.evaluations.clear();
        s.rng = Pcg32(seed);
    }
    armed_.store(arm, std::memory_order_relaxed);
    return true;
}

void
FaultInjector::configureFromEnv()
{
    const char *plan = std::getenv("GPX_FAULTS");
    if (plan == nullptr || plan[0] == '\0')
        return;
    u64 seed = 0;
    if (const char *seedText = std::getenv("GPX_FAULTS_SEED"))
        seed = std::strtoull(seedText, nullptr, 10);
    std::string error;
    if (!configure(plan, seed, &error))
        std::cerr << "gpx: ignoring GPX_FAULTS: " << error << "\n";
}

void
FaultInjector::reset()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    armed_.store(false, std::memory_order_relaxed);
    s.rules.clear();
    s.evaluations.clear();
}

FaultHit
FaultInjector::check(const char *point)
{
    return evaluate(point, 1);
}

FaultHit
FaultInjector::checkBytes(const char *point, u64 bytes)
{
    return evaluate(point, bytes);
}

u64
FaultInjector::fires(const std::string &point) const
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    u64 total = 0;
    for (const auto &rule : s.rules)
        if (rule.point == point)
            total += rule.fires;
    return total;
}

u64
FaultInjector::evaluations(const std::string &point) const
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.evaluations.find(point);
    return it == s.evaluations.end() ? 0 : it->second;
}

u64
FaultInjector::totalFires() const
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    u64 total = 0;
    for (const auto &rule : s.rules)
        total += rule.fires;
    return total;
}

const std::vector<std::string> &
FaultInjector::knownPoints()
{
    return kKnownPoints;
}

namespace {

/** Arms the injector from the environment before main() runs, so any
 *  test binary or tool joins a GPX_FAULTS sweep without code changes. */
struct EnvArm
{
    EnvArm() { FaultInjector::instance().configureFromEnv(); }
} envArm;

} // namespace

} // namespace util
} // namespace gpx
