/**
 * @file
 * SigbusGuard: turn a SIGBUS inside a bounded region into an error
 * return instead of process death.
 *
 * An mmap'd index image is a shared-mutable contract with the
 * filesystem: if the backing file is truncated after the mapping is
 * established (operator error, a botched index refresh, NFS), the next
 * load from a vanished page raises SIGBUS and — unhandled — kills the
 * daemon and every connection it was serving. The validation pass of
 * SeedMapImage::open touches every mapped byte it will later trust, so
 * wrapping *that* region in a guard converts truncation into a
 * diagnostic reject before the image is ever published to a mount;
 * pages that survive validation can only fault later if the file is
 * truncated while mounted, which the hot-swap path's re-validation
 * also runs under the guard.
 *
 * Mechanics: a process-wide SIGBUS handler (installed once, first
 * use) consults a thread-local landing pad; inside run() the pad is
 * armed and the handler siglongjmps back out, outside it the default
 * disposition is restored and the signal re-raised so an unrelated
 * SIGBUS still crashes loudly. Guarded regions must not hold locks
 * across the faulting access (the jump abandons the stack) — the
 * SeedMap validation pass is pure reads over the mapping, which is
 * exactly the shape this tool is for.
 */

#ifndef GPX_UTIL_SIGBUS_GUARD_HH
#define GPX_UTIL_SIGBUS_GUARD_HH

#include <functional>

namespace gpx {
namespace util {

class SigbusGuard
{
  public:
    /**
     * Run @p fn with SIGBUS trapped on this thread. Returns false iff
     * @p fn faulted (its work must be treated as never-happened);
     * nesting is allowed, the innermost guard wins.
     */
    static bool run(const std::function<void()> &fn);
};

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_SIGBUS_GUARD_HH
