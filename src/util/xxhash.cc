#include "util/xxhash.hh"

#include <cstring>

namespace gpx {
namespace util {

namespace {

constexpr u32 kPrime32_1 = 0x9E3779B1u;
constexpr u32 kPrime32_2 = 0x85EBCA77u;
constexpr u32 kPrime32_3 = 0xC2B2AE3Du;
constexpr u32 kPrime32_4 = 0x27D4EB2Fu;
constexpr u32 kPrime32_5 = 0x165667B1u;

constexpr u64 kPrime64_1 = 0x9E3779B185EBCA87ull;
constexpr u64 kPrime64_2 = 0xC2B2AE3D27D4EB4Full;
constexpr u64 kPrime64_3 = 0x165667B19E3779F9ull;
constexpr u64 kPrime64_4 = 0x85EBCA77C2B2AE63ull;
constexpr u64 kPrime64_5 = 0x27D4EB2F165667C5ull;

inline u32
rotl32(u32 x, int r)
{
    return (x << r) | (x >> (32 - r));
}

inline u64
rotl64(u64 x, int r)
{
    return (x << r) | (x >> (64 - r));
}

inline u32
read32(const u8 *p)
{
    u32 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline u64
read64(const u8 *p)
{
    u64 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline u32
round32(u32 acc, u32 input)
{
    acc += input * kPrime32_2;
    acc = rotl32(acc, 13);
    acc *= kPrime32_1;
    return acc;
}

inline u64
round64(u64 acc, u64 input)
{
    acc += input * kPrime64_2;
    acc = rotl64(acc, 31);
    acc *= kPrime64_1;
    return acc;
}

inline u64
mergeRound64(u64 acc, u64 val)
{
    val = round64(0, val);
    acc ^= val;
    acc = acc * kPrime64_1 + kPrime64_4;
    return acc;
}

} // namespace

u32
xxh32(const void *data, std::size_t len, u32 seed)
{
    const u8 *p = static_cast<const u8 *>(data);
    const u8 *end = p + len;
    u32 h;

    if (len >= 16) {
        const u8 *limit = end - 16;
        u32 v1 = seed + kPrime32_1 + kPrime32_2;
        u32 v2 = seed + kPrime32_2;
        u32 v3 = seed + 0;
        u32 v4 = seed - kPrime32_1;
        do {
            v1 = round32(v1, read32(p)); p += 4;
            v2 = round32(v2, read32(p)); p += 4;
            v3 = round32(v3, read32(p)); p += 4;
            v4 = round32(v4, read32(p)); p += 4;
        } while (p <= limit);
        h = rotl32(v1, 1) + rotl32(v2, 7) + rotl32(v3, 12) + rotl32(v4, 18);
    } else {
        h = seed + kPrime32_5;
    }

    h += static_cast<u32>(len);

    while (p + 4 <= end) {
        h += read32(p) * kPrime32_3;
        h = rotl32(h, 17) * kPrime32_4;
        p += 4;
    }
    while (p < end) {
        h += (*p) * kPrime32_5;
        h = rotl32(h, 11) * kPrime32_1;
        ++p;
    }

    h ^= h >> 15;
    h *= kPrime32_2;
    h ^= h >> 13;
    h *= kPrime32_3;
    h ^= h >> 16;
    return h;
}

u64
xxh64(const void *data, std::size_t len, u64 seed)
{
    const u8 *p = static_cast<const u8 *>(data);
    const u8 *end = p + len;
    u64 h;

    if (len >= 32) {
        const u8 *limit = end - 32;
        u64 v1 = seed + kPrime64_1 + kPrime64_2;
        u64 v2 = seed + kPrime64_2;
        u64 v3 = seed + 0;
        u64 v4 = seed - kPrime64_1;
        do {
            v1 = round64(v1, read64(p)); p += 8;
            v2 = round64(v2, read64(p)); p += 8;
            v3 = round64(v3, read64(p)); p += 8;
            v4 = round64(v4, read64(p)); p += 8;
        } while (p <= limit);
        h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) +
            rotl64(v4, 18);
        h = mergeRound64(h, v1);
        h = mergeRound64(h, v2);
        h = mergeRound64(h, v3);
        h = mergeRound64(h, v4);
    } else {
        h = seed + kPrime64_5;
    }

    h += static_cast<u64>(len);

    while (p + 8 <= end) {
        h ^= round64(0, read64(p));
        h = rotl64(h, 27) * kPrime64_1 + kPrime64_4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<u64>(read32(p)) * kPrime64_1;
        h = rotl64(h, 23) * kPrime64_2 + kPrime64_3;
        p += 4;
    }
    while (p < end) {
        h ^= (*p) * kPrime64_5;
        h = rotl64(h, 11) * kPrime64_1;
        ++p;
    }

    h ^= h >> 33;
    h *= kPrime64_2;
    h ^= h >> 29;
    h *= kPrime64_3;
    h ^= h >> 32;
    return h;
}

u64
xxh64Word(u64 word, u64 seed)
{
    return xxh64(&word, sizeof(word), seed);
}

} // namespace util
} // namespace gpx
