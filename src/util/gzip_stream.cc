#include "util/gzip_stream.hh"

#include <cstring>

#include "util/logging.hh"

#ifdef GPX_HAVE_ZLIB
#include <zlib.h>
#endif

namespace gpx {
namespace util {

namespace {
constexpr unsigned char kGzipMagic0 = 0x1f;
constexpr unsigned char kGzipMagic1 = 0x8b;
constexpr std::size_t kInflateBlockBytes = 256 * 1024;
} // namespace

bool
gzipSupported()
{
#ifdef GPX_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

#ifdef GPX_HAVE_ZLIB

std::string
gzipCompress(const std::string &plain, int level)
{
    z_stream zs;
    std::memset(&zs, 0, sizeof(zs));
    // windowBits 15+16 selects the gzip wrapper.
    if (deflateInit2(&zs, level, Z_DEFLATED, 15 + 16, 8,
                     Z_DEFAULT_STRATEGY) != Z_OK)
        gpx_fatal("deflateInit2 failed");
    std::string out;
    out.resize(deflateBound(&zs, static_cast<uLong>(plain.size())));
    zs.next_in =
        reinterpret_cast<Bytef *>(const_cast<char *>(plain.data()));
    zs.avail_in = static_cast<uInt>(plain.size());
    zs.next_out = reinterpret_cast<Bytef *>(out.data());
    zs.avail_out = static_cast<uInt>(out.size());
    const int rc = deflate(&zs, Z_FINISH);
    if (rc != Z_STREAM_END) {
        deflateEnd(&zs);
        gpx_fatal("gzip compression failed (zlib rc ", rc, ")");
    }
    out.resize(zs.total_out);
    deflateEnd(&zs);
    return out;
}

struct AutoInflateSource::Inflater
{
    z_stream zs;
    bool memberDone = false;

    Inflater()
    {
        std::memset(&zs, 0, sizeof(zs));
        // windowBits 15+16: gzip wrapper only (reject raw zlib here;
        // plain text never reaches the inflater).
        if (inflateInit2(&zs, 15 + 16) != Z_OK)
            gpx_fatal("inflateInit2 failed");
    }
    ~Inflater() { inflateEnd(&zs); }
};

bool
AutoInflateSource::readInflated(std::string &block)
{
    // A failed read must not leave the caller's block holding the
    // scratch bytes resized below — ByteSource::read() promises the
    // block is meaningful only on true.
    block.resize(kInflateBlockBytes);
    auto &zs = inflater_->zs;
    zs.next_out = reinterpret_cast<Bytef *>(block.data());
    zs.avail_out = static_cast<uInt>(block.size());
    while (zs.avail_out > 0) {
        if (pendingPos_ >= pending_.size() && !innerEof_)
            fill();
        if (!error_.empty()) {
            block.clear();
            return false;
        }
        const std::size_t avail = pending_.size() - pendingPos_;
        if (avail == 0 && innerEof_) {
            if (!inflater_->memberDone) {
                error_ = "corrupt gzip stream: truncated member "
                         "(unexpected EOF)";
                block.clear();
                return false;
            }
            break;
        }
        if (inflater_->memberDone) {
            // Concatenated-member convention: a fresh gzip stream
            // follows the previous one.
            if (inflateReset(&zs) != Z_OK) {
                error_ = "corrupt gzip stream: inflateReset failed";
                block.clear();
                return false;
            }
            inflater_->memberDone = false;
        }
        zs.next_in = reinterpret_cast<Bytef *>(
            const_cast<char *>(pending_.data() + pendingPos_));
        zs.avail_in = static_cast<uInt>(avail);
        const int rc = inflate(&zs, Z_NO_FLUSH);
        pendingPos_ += avail - zs.avail_in;
        if (rc == Z_STREAM_END) {
            inflater_->memberDone = true;
            // Trailing bytes that are not another gzip member (e.g.
            // bgzip padding of zeros is a valid empty member, but a
            // lone partial magic is garbage we surface below on the
            // next iteration via inflate's own error).
            continue;
        }
        if (rc != Z_OK && rc != Z_BUF_ERROR) {
            error_ = std::string("corrupt gzip stream: ") +
                     (zs.msg != nullptr ? zs.msg : "inflate failed");
            block.clear();
            return false;
        }
        if (rc == Z_BUF_ERROR && avail == zs.avail_in && innerEof_) {
            error_ = "corrupt gzip stream: no progress at EOF";
            block.clear();
            return false;
        }
    }
    block.resize(block.size() - zs.avail_out);
    return !block.empty();
}

#else // !GPX_HAVE_ZLIB

std::string
gzipCompress(const std::string &, int)
{
    gpx_fatal("gzipCompress requires zlib; rebuild with zlib available");
}

struct AutoInflateSource::Inflater
{
};

bool
AutoInflateSource::readInflated(std::string &)
{
    error_ = "input is gzip-compressed but this binary was built "
             "without zlib; rebuild with zlib to read .gz input";
    return false;
}

#endif // GPX_HAVE_ZLIB

AutoInflateSource::AutoInflateSource(ByteSource &inner) : inner_(inner) {}

AutoInflateSource::~AutoInflateSource() = default;

bool
AutoInflateSource::fill()
{
    if (pendingPos_ >= pending_.size()) {
        pending_.clear();
        pendingPos_ = 0;
    }
    std::string block;
    if (!inner_.read(block)) {
        innerEof_ = true;
        if (!inner_.error().empty())
            error_ = inner_.error();
        return false;
    }
    pending_.append(block);
    return true;
}

bool
AutoInflateSource::read(std::string &block)
{
    if (!error_.empty())
        return false;
    if (!sniffed_) {
        // Buffer at least two bytes (or hit EOF) before deciding.
        while (pending_.size() < 2 && !innerEof_)
            fill();
        if (!error_.empty())
            return false;
        sniffed_ = true;
        gzip_ = pending_.size() >= 2 &&
                static_cast<unsigned char>(pending_[0]) == kGzipMagic0 &&
                static_cast<unsigned char>(pending_[1]) == kGzipMagic1;
        if (gzip_) {
#ifdef GPX_HAVE_ZLIB
            inflater_ = std::make_unique<Inflater>();
#endif
        }
    }
    if (gzip_)
        return readInflated(block);
    // Passthrough: drain the sniff buffer first, then forward reads.
    if (pendingPos_ < pending_.size()) {
        block.assign(pending_, pendingPos_, std::string::npos);
        pending_.clear();
        pendingPos_ = 0;
        return true;
    }
    if (innerEof_)
        return false;
    if (!inner_.read(block)) {
        innerEof_ = true;
        if (!inner_.error().empty())
            error_ = inner_.error();
        return false;
    }
    return true;
}

} // namespace util
} // namespace gpx
