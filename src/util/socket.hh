/**
 * @file
 * Minimal stream-socket layer for the gpx_serve daemon and its client:
 * RAII file descriptors, Unix-domain and TCP listeners/connectors, and
 * exact-length read/write helpers. Everything reports failures through
 * status returns (a resident server must survive every peer-side
 * misbehavior; only programming errors may panic).
 */

#ifndef GPX_UTIL_SOCKET_HH
#define GPX_UTIL_SOCKET_HH

#include <optional>
#include <string>

#include "util/types.hh"

namespace gpx {
namespace util {

/** RAII owner of one socket file descriptor. Movable, not copyable. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();

    Socket(Socket &&other) noexcept;
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close now (idempotent; also done by the destructor). */
    void close();

    /**
     * Shut down the socket for both directions without closing the
     * descriptor: any thread blocked in a read on this socket wakes
     * with EOF. The drain half of graceful shutdown.
     */
    void shutdownBoth();

    /**
     * Read exactly @p len bytes (retrying short reads / EINTR).
     * Returns false on EOF-before-len or error; a clean EOF at offset
     * zero sets @p clean_eof when non-null (a peer hanging up between
     * frames is not an error).
     */
    bool readExact(void *buf, u64 len, bool *clean_eof = nullptr) const;

    /** How a deadline-bounded read ended (readExactDeadline). */
    struct IoStatus
    {
        bool ok = false;       ///< all @p len bytes arrived
        bool cleanEof = false; ///< peer closed before the first byte
        bool timedOut = false; ///< deadline expired (see transferred)
        u64 transferred = 0;   ///< bytes read before the outcome
    };

    /**
     * readExact with a wall-clock budget: @p timeout_ms bounds the
     * whole transfer on a monotonic clock (poll + read loop, so a
     * peer dribbling one byte per interval cannot reset the deadline
     * the way a plain SO_RCVTIMEO would). @p timeout_ms < 0 waits
     * forever (plain readExact semantics).
     */
    IoStatus readExactDeadline(void *buf, u64 len, i64 timeout_ms) const;

    /** Write exactly @p len bytes (retrying short writes / EINTR). */
    bool writeExact(const void *buf, u64 len) const;

    /**
     * Bound every send on this socket to @p timeout_ms (SO_SNDTIMEO;
     * 0 clears). A stalled peer then fails writeExact instead of
     * pinning the writer thread forever. Best-effort.
     */
    void setSendTimeout(u32 timeout_ms) const;

    /** SO_RCVTIMEO backstop for code using plain readExact. */
    void setRecvTimeout(u32 timeout_ms) const;

  private:
    int fd_ = -1;
};

/**
 * Listen on a Unix-domain stream socket at @p path (any stale socket
 * file at that path is unlinked first). Returns nullopt and sets
 * @p error on failure.
 */
std::optional<Socket> listenUnix(const std::string &path,
                                 std::string *error);

/** Connect to a Unix-domain stream socket. */
std::optional<Socket> connectUnix(const std::string &path,
                                  std::string *error);

/**
 * Listen on TCP 127.0.0.1:@p port (port 0 = kernel-assigned; the
 * chosen port is written to @p bound_port when non-null).
 */
std::optional<Socket> listenTcp(u16 port, std::string *error,
                                u16 *bound_port = nullptr);

/** Connect to TCP @p host:@p port. */
std::optional<Socket> connectTcp(const std::string &host, u16 port,
                                 std::string *error);

/**
 * Accept one connection from @p listener. Returns nullopt on error or
 * once the listener has been shut down (the accept loop's exit path).
 */
std::optional<Socket> acceptOne(const Socket &listener,
                                std::string *error);

} // namespace util
} // namespace gpx

#endif // GPX_UTIL_SOCKET_HH
