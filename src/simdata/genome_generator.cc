#include "simdata/genome_generator.hh"

#include <algorithm>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"

namespace gpx {
namespace simdata {

using genomics::DnaSequence;
using genomics::Reference;
using util::Pcg32;

namespace {

/** Draw one base honouring the GC fraction. */
u8
randomBase(Pcg32 &rng, double gc)
{
    if (rng.uniform() < gc)
        return rng.chance(0.5) ? genomics::BaseC : genomics::BaseG;
    return rng.chance(0.5) ? genomics::BaseA : genomics::BaseT;
}

/** Random sequence of the given length. */
std::vector<u8>
randomCodes(Pcg32 &rng, u64 len, double gc)
{
    std::vector<u8> codes(len);
    for (auto &c : codes)
        c = randomBase(rng, gc);
    return codes;
}

/** A repeat family: consensus plus target copy count. */
struct RepeatFamily
{
    std::vector<u8> consensus;
    u64 copies;
    double divergence;
};

} // namespace

Reference
generateGenome(const GenomeParams &params)
{
    gpx_assert(params.length >= 10000, "genome too small");
    gpx_assert(params.chromosomes >= 1, "need at least one chromosome");
    Pcg32 rng(params.seed, 0xC0FFEE);

    // Background random genome, chromosome sizes roughly equal with a
    // human-like size skew.
    std::vector<u64> sizes(params.chromosomes);
    u64 remaining = params.length;
    for (u32 c = 0; c < params.chromosomes; ++c) {
        u32 left = params.chromosomes - c;
        u64 base = remaining / left;
        u64 jitter = left > 1 ? rng.below64(base / 4 + 1) : 0;
        sizes[c] = std::min(remaining, base + jitter);
        remaining -= sizes[c];
    }

    std::vector<std::vector<u8>> chroms;
    chroms.reserve(params.chromosomes);
    for (u32 c = 0; c < params.chromosomes; ++c)
        chroms.push_back(randomCodes(rng, sizes[c], params.gcContent));

    // Build the repeat library. Length/copy-number mixture loosely follows
    // the human repeat landscape: many short SINE-like elements, fewer long
    // LINE-like elements, a couple of segmental duplications, and satellite
    // arrays that create the >500-location heavy tail (paper §5.2).
    u64 repeat_budget =
        static_cast<u64>(params.repeatFraction * params.length);
    std::vector<RepeatFamily> families;

    u64 planned = 0;
    // Satellite families: short unit, very high copy count.
    for (u32 s = 0; s < params.satelliteFamilies && planned < repeat_budget;
         ++s) {
        RepeatFamily fam;
        fam.consensus = randomCodes(rng, 120 + rng.below(80),
                                    params.gcContent);
        u64 budget = repeat_budget / 8;
        fam.copies = std::max<u64>(50, budget / fam.consensus.size());
        fam.divergence = params.repeatDivergence * 0.3;
        planned += fam.copies * fam.consensus.size();
        families.push_back(std::move(fam));
    }
    // Interspersed families until the budget is filled.
    while (planned < repeat_budget) {
        RepeatFamily fam;
        u32 pick = rng.below(100);
        if (pick < 70)
            fam.consensus = randomCodes(rng, 200 + rng.below(200),
                                        params.gcContent); // SINE-like
        else if (pick < 95)
            fam.consensus = randomCodes(rng, 1000 + rng.below(2000),
                                        params.gcContent); // LINE-like
        else
            fam.consensus = randomCodes(rng, 5000 + rng.below(5000),
                                        params.gcContent); // segdup-like
        // Copy counts follow a rough power law.
        double u = rng.uniform();
        fam.copies = static_cast<u64>(3 + 60.0 * u * u * u * u);
        fam.divergence = params.repeatDivergence *
                         (0.5 + 1.5 * rng.uniform());
        planned += fam.copies * fam.consensus.size();
        families.push_back(std::move(fam));
    }

    // Stamp copies into the background. Iterate in reverse so the
    // satellite families (built first) are stamped last and keep their
    // near-identical high-copy structure — mirroring the homogeneity of
    // real centromeric satellite arrays that drives the paper's
    // index-filtering threshold.
    for (auto it = families.rbegin(); it != families.rend(); ++it) {
        const auto &fam = *it;
        for (u64 copy = 0; copy < fam.copies; ++copy) {
            u32 chrom = rng.below(params.chromosomes);
            auto &target = chroms[chrom];
            if (target.size() <= fam.consensus.size() + 2)
                continue;
            u64 pos = rng.below64(target.size() - fam.consensus.size() - 1);
            bool rc = rng.chance(0.5);
            for (std::size_t i = 0; i < fam.consensus.size(); ++i) {
                u8 base;
                if (rc) {
                    base = genomics::complementBase(
                        fam.consensus[fam.consensus.size() - 1 - i]);
                } else {
                    base = fam.consensus[i];
                }
                if (rng.chance(fam.divergence))
                    base = static_cast<u8>((base + 1 + rng.below(3)) & 3u);
                target[pos + i] = base;
            }
        }
    }

    Reference ref;
    for (u32 c = 0; c < params.chromosomes; ++c) {
        ref.addChromosome("chr" + std::to_string(c + 1),
                          DnaSequence::fromCodes(chroms[c]));
    }
    return ref;
}

} // namespace simdata
} // namespace gpx
