/**
 * @file
 * Synthetic reference genome generator.
 *
 * Substitutes for GRCh38 in every experiment (see DESIGN.md). The key
 * property that must carry over is the seed-multiplicity distribution the
 * paper measures (Obs. 2: ~9.5 mapping locations per 50 bp seed, with a
 * heavy tail that motivates the index-filtering threshold). That
 * distribution is driven by repeat content, so the generator plants
 * interspersed repeat families (SINE/LINE-like), tandem/satellite arrays
 * and low-divergence segmental duplications into a random background.
 */

#ifndef GPX_SIMDATA_GENOME_GENERATOR_HH
#define GPX_SIMDATA_GENOME_GENERATOR_HH

#include "genomics/reference.hh"
#include "util/types.hh"

namespace gpx {
namespace simdata {

/** Parameters of the synthetic genome. */
struct GenomeParams
{
    u64 length = 1 << 20;      ///< total bases across chromosomes
    u32 chromosomes = 2;       ///< number of chromosomes
    double gcContent = 0.41;   ///< human-like GC fraction
    double repeatFraction = 0.45; ///< fraction of bases covered by repeats
    double repeatDivergence = 0.03; ///< per-base mutation on repeat copies
    u32 satelliteFamilies = 1; ///< very-high-copy short repeats (heavy tail)
    u64 seed = 7;              ///< RNG seed
};

/** Generate a reference genome with the given structure. */
genomics::Reference generateGenome(const GenomeParams &params);

} // namespace simdata
} // namespace gpx

#endif // GPX_SIMDATA_GENOME_GENERATOR_HH
