/**
 * @file
 * Mason-like paired-end and long-read simulators.
 *
 * Substitutes for the GIAB HG002 2x150 bp read sets and the PacBio HiFi
 * long-read set (see DESIGN.md). Sequencing errors use a per-fragment
 * quality mixture (most fragments near-clean, a minority degraded), which
 * is what lets a single generator reproduce the paper's joint statistics:
 * ~36.8% of pairs matching the reference exactly (§3.2) while only ~86%
 * of pairs have a clean 50 bp segment in both reads (Obs. 1).
 */

#ifndef GPX_SIMDATA_READ_SIMULATOR_HH
#define GPX_SIMDATA_READ_SIMULATOR_HH

#include <vector>

#include "genomics/readpair.hh"
#include "simdata/variants.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace gpx {
namespace simdata {

/** Per-base sequencing error model. */
struct ErrorProfile
{
    double subRate = 0.0012;  ///< substitution rate of clean fragments
    double insRate = 0.0001;  ///< insertion rate of clean fragments
    double delRate = 0.0001;  ///< deletion rate of clean fragments
    double badFragmentFrac = 0.32; ///< fraction of degraded fragments
    double badMultiplier = 12.0;   ///< error-rate multiplier when degraded

    /**
     * Mason's default profile for the §7.7 sweep: a uniform split of the
     * total per-base error rate across substitutions, insertions and
     * deletions, with no quality mixture.
     */
    static ErrorProfile
    uniform(double total_rate)
    {
        ErrorProfile p;
        p.subRate = total_rate / 3.0;
        p.insRate = total_rate / 3.0;
        p.delRate = total_rate / 3.0;
        p.badFragmentFrac = 0.0;
        p.badMultiplier = 1.0;
        return p;
    }

    /** Mean per-base total error rate across the mixture. */
    double
    meanErrorRate() const
    {
        double base = subRate + insRate + delRate;
        return base * (1.0 - badFragmentFrac) +
               base * badMultiplier * badFragmentFrac;
    }
};

/** Paired-end simulation parameters. */
struct ReadSimParams
{
    u32 readLen = 150;
    double insertMean = 400.0; ///< outer fragment length
    double insertSd = 40.0;
    ErrorProfile errors;
    u64 seed = 23;
};

/** Long-read (PacBio-HiFi-like) simulation parameters. */
struct LongReadSimParams
{
    double meanLen = 9569.0; ///< the paper's HiFi dataset mean
    double sdLen = 2500.0;
    u32 minLen = 1000;
    ErrorProfile errors = ErrorProfile::uniform(0.005);
    u64 seed = 31;
};

/** Simulates paired-end reads from a diploid donor genome. */
class ReadSimulator
{
  public:
    ReadSimulator(const DiploidGenome &genome, const ReadSimParams &params);

    /** Simulate one read pair. */
    genomics::ReadPair simulatePair();

    /** Simulate @p n pairs. */
    std::vector<genomics::ReadPair> simulate(u64 n);

  private:
    /** Apply sequencing errors to a fragment slice; returns the read. */
    genomics::DnaSequence applyErrors(const genomics::DnaSequence &truth,
                                      bool degraded);

    const DiploidGenome &genome_;
    ReadSimParams params_;
    util::Pcg32 rng_;
    std::vector<double> chromWeights_;
    u64 nextId_ = 0;
};

/** Simulates long reads from a diploid donor genome. */
class LongReadSimulator
{
  public:
    LongReadSimulator(const DiploidGenome &genome,
                      const LongReadSimParams &params);

    genomics::Read simulateRead();
    std::vector<genomics::Read> simulate(u64 n);

  private:
    const DiploidGenome &genome_;
    LongReadSimParams params_;
    util::Pcg32 rng_;
    u64 nextId_ = 0;
};

} // namespace simdata
} // namespace gpx

#endif // GPX_SIMDATA_READ_SIMULATOR_HH
