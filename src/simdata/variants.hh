/**
 * @file
 * Diploid variant injection and haplotype materialization.
 *
 * Plays the role of the Genome-in-a-Bottle truth set: the simulator plants
 * SNPs and INDELs into two haplotypes, remembers them as a ground-truth
 * list, and the variant-calling benchmark (paper Table 7) compares calls
 * against that list exactly as vcfdist compares against the GIAB VCF.
 */

#ifndef GPX_SIMDATA_VARIANTS_HH
#define GPX_SIMDATA_VARIANTS_HH

#include <vector>

#include "genomics/reference.hh"
#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace simdata {

/** Variant types in the truth set. */
enum class VariantType : u8 { Snp, Insertion, Deletion };

/** Genotypes: which haplotypes carry the variant. */
enum class Genotype : u8 { Het1, Het2, Hom };

/** One planted variant, in reference coordinates. */
struct Variant
{
    u32 chrom = 0;
    u64 pos = 0; ///< reference offset within the chromosome
    VariantType type = VariantType::Snp;
    Genotype genotype = Genotype::Hom;
    u8 refBase = 0;              ///< for SNPs
    u8 altBase = 0;              ///< for SNPs
    genomics::DnaSequence insSeq; ///< for insertions
    u32 delLen = 0;              ///< for deletions

    /** True if the given haplotype (0/1) carries this variant. */
    bool
    onHaplotype(u32 hap) const
    {
        switch (genotype) {
          case Genotype::Het1: return hap == 0;
          case Genotype::Het2: return hap == 1;
          case Genotype::Hom: return true;
        }
        return false;
    }
};

/** Variant-generation parameters (paper §7.8 rates by default). */
struct VariantParams
{
    double snpRate = 1e-3;
    double indelRate = 2e-4;
    double hetFraction = 0.6;    ///< fraction of variants heterozygous
    u32 maxIndelLen = 8;
    double indelExtendProb = 0.4;///< geometric INDEL length tail
    u32 minSpacing = 12;         ///< minimum bases between variants
    u64 seed = 11;
};

/**
 * One materialized haplotype chromosome plus its coordinate map back to
 * the reference.
 */
struct Haplotype
{
    genomics::DnaSequence seq;
    /** Anchor arrays: refAnchor[i] corresponds to hapAnchor[i]. */
    std::vector<u64> hapAnchor;
    std::vector<u64> refAnchor;

    /** Project a haplotype offset onto a reference offset. */
    u64 toRefOffset(u64 hap_pos) const;
};

/**
 * A diploid donor genome: the reference plus two haplotypes per
 * chromosome and the truth variant list.
 */
class DiploidGenome
{
  public:
    /** Plant variants into @p ref and materialize both haplotypes. */
    DiploidGenome(const genomics::Reference &ref,
                  const VariantParams &params);

    const genomics::Reference &reference() const { return *ref_; }
    const std::vector<Variant> &truthVariants() const { return variants_; }

    /** Haplotype @p hap (0/1) of chromosome @p chrom. */
    const Haplotype &haplotype(u32 chrom, u32 hap) const;

    /** Sum of both haplotype lengths (for coverage computations). */
    u64 totalHaplotypeLength() const;

  private:
    void generateVariants(const VariantParams &params);
    void materialize();

    const genomics::Reference *ref_;
    std::vector<Variant> variants_;
    /** haplotypes_[chrom][hap] */
    std::vector<std::vector<Haplotype>> haplotypes_;
};

} // namespace simdata
} // namespace gpx

#endif // GPX_SIMDATA_VARIANTS_HH
