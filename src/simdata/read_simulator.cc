#include "simdata/read_simulator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace gpx {
namespace simdata {

using genomics::DnaSequence;
using genomics::Read;
using genomics::ReadPair;

ReadSimulator::ReadSimulator(const DiploidGenome &genome,
                             const ReadSimParams &params)
    : genome_(genome), params_(params), rng_(params.seed, 0x5EED)
{
    const auto &ref = genome_.reference();
    double total = static_cast<double>(ref.totalLength());
    for (u32 c = 0; c < ref.numChromosomes(); ++c)
        chromWeights_.push_back(ref.chromosomeLength(c) / total);
}

DnaSequence
ReadSimulator::applyErrors(const DnaSequence &truth, bool degraded)
{
    double mult = degraded ? params_.errors.badMultiplier : 1.0;
    double sub = std::min(0.5, params_.errors.subRate * mult);
    double ins = std::min(0.25, params_.errors.insRate * mult);
    double del = std::min(0.25, params_.errors.delRate * mult);

    DnaSequence out;
    std::size_t i = 0;
    while (out.size() < params_.readLen) {
        if (i >= truth.size()) {
            out.push(static_cast<u8>(rng_.below(4))); // ran past template
            continue;
        }
        if (rng_.chance(del)) {
            ++i;
            continue;
        }
        if (rng_.chance(ins)) {
            out.push(static_cast<u8>(rng_.below(4)));
            continue;
        }
        u8 base = truth.at(i);
        if (rng_.chance(sub))
            base = static_cast<u8>((base + 1 + rng_.below(3)) & 3u);
        out.push(base);
        ++i;
    }
    return out;
}

ReadPair
ReadSimulator::simulatePair()
{
    const auto &ref = genome_.reference();

    // Choose a chromosome proportional to its length, then a haplotype.
    double r = rng_.uniform();
    u32 chrom = 0;
    for (; chrom + 1 < chromWeights_.size(); ++chrom) {
        if (r < chromWeights_[chrom])
            break;
        r -= chromWeights_[chrom];
    }
    u32 hap = rng_.below(2);
    const Haplotype &h = genome_.haplotype(chrom, hap);

    u32 min_insert = params_.readLen + 20;
    u64 insert = static_cast<u64>(std::max<double>(
        min_insert, rng_.normal(params_.insertMean, params_.insertSd)));
    insert = std::min<u64>(insert, h.seq.size() > min_insert
                                       ? h.seq.size() - 1
                                       : min_insert);
    gpx_assert(h.seq.size() > insert + 2, "chromosome shorter than insert");
    u64 start = rng_.below64(h.seq.size() - insert - 1);

    bool degraded = rng_.chance(params_.errors.badFragmentFrac);

    // Template slices with slack for deletions.
    u64 slack = 24;
    DnaSequence t1 = h.seq.sub(
        start, std::min<u64>(params_.readLen + slack, h.seq.size() - start));
    u64 r2_start = start + insert - params_.readLen;
    u64 r2_tmpl_start = r2_start > slack ? r2_start - slack : 0;
    DnaSequence t2fwd = h.seq.sub(r2_tmpl_start,
                                  start + insert - r2_tmpl_start);
    DnaSequence t2 = t2fwd.revComp(); // read 2 is sequenced on the - strand

    ReadPair pair;
    u64 id = nextId_++;
    pair.first.name = "sim" + std::to_string(id) + "/1";
    pair.first.seq = applyErrors(t1, degraded);
    pair.first.truthPos =
        ref.chromosomeStart(chrom) + h.toRefOffset(start);
    pair.first.truthReverse = false;

    pair.second.name = "sim" + std::to_string(id) + "/2";
    pair.second.seq = applyErrors(t2, degraded);
    pair.second.truthPos =
        ref.chromosomeStart(chrom) + h.toRefOffset(r2_start);
    pair.second.truthReverse = true;
    return pair;
}

std::vector<ReadPair>
ReadSimulator::simulate(u64 n)
{
    std::vector<ReadPair> pairs;
    pairs.reserve(n);
    for (u64 i = 0; i < n; ++i)
        pairs.push_back(simulatePair());
    return pairs;
}

LongReadSimulator::LongReadSimulator(const DiploidGenome &genome,
                                     const LongReadSimParams &params)
    : genome_(genome), params_(params), rng_(params.seed, 0x10A6)
{
}

Read
LongReadSimulator::simulateRead()
{
    const auto &ref = genome_.reference();
    // Longest chromosome keeps long reads inside one sequence.
    u32 chrom = 0;
    for (u32 c = 1; c < ref.numChromosomes(); ++c) {
        if (ref.chromosomeLength(c) > ref.chromosomeLength(chrom))
            chrom = c;
    }
    u32 hap = rng_.below(2);
    const Haplotype &h = genome_.haplotype(chrom, hap);

    u64 len = static_cast<u64>(std::max<double>(
        params_.minLen, rng_.normal(params_.meanLen, params_.sdLen)));
    len = std::min<u64>(len, h.seq.size() / 2);
    u64 start = rng_.below64(h.seq.size() - len - 1);

    DnaSequence truth = h.seq.sub(start, len);
    bool reverse = rng_.chance(0.5);

    // Apply errors base by base (no fixed output length for long reads).
    double sub = params_.errors.subRate;
    double ins = params_.errors.insRate;
    double del = params_.errors.delRate;
    DnaSequence seq;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        if (rng_.chance(del))
            continue;
        if (rng_.chance(ins))
            seq.push(static_cast<u8>(rng_.below(4)));
        u8 base = truth.at(i);
        if (rng_.chance(sub))
            base = static_cast<u8>((base + 1 + rng_.below(3)) & 3u);
        seq.push(base);
    }
    if (reverse)
        seq = seq.revComp();

    Read read;
    read.name = "long" + std::to_string(nextId_++);
    read.seq = std::move(seq);
    read.truthPos = ref.chromosomeStart(chrom) + h.toRefOffset(start);
    read.truthReverse = reverse;
    return read;
}

std::vector<Read>
LongReadSimulator::simulate(u64 n)
{
    std::vector<Read> reads;
    reads.reserve(n);
    for (u64 i = 0; i < n; ++i)
        reads.push_back(simulateRead());
    return reads;
}

} // namespace simdata
} // namespace gpx
