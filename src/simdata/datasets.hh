/**
 * @file
 * Canonical dataset profiles D1/D2/D3.
 *
 * The paper evaluates on three GIAB HG002 2x150 bp read sets; these
 * profiles are their synthetic stand-ins, differing in RNG seed, error
 * rate and insert-size distribution (see DESIGN.md substitution table).
 */

#ifndef GPX_SIMDATA_DATASETS_HH
#define GPX_SIMDATA_DATASETS_HH

#include <memory>
#include <string>
#include <vector>

#include "genomics/readpair.hh"
#include "genomics/reference.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"
#include "simdata/variants.hh"

namespace gpx {
namespace simdata {

/** Everything needed to build one dataset. */
struct DatasetConfig
{
    std::string name;
    GenomeParams genome;
    VariantParams variants;
    ReadSimParams reads;
    u64 numPairs = 10000;
};

/** Profile of GIAB dataset i (i in {1,2,3}); shared synthetic genome. */
DatasetConfig datasetConfig(u32 index, u64 genome_len, u64 num_pairs);

/** A fully materialized dataset. */
struct Dataset
{
    std::string name;
    std::unique_ptr<genomics::Reference> reference;
    std::unique_ptr<DiploidGenome> diploid;
    std::vector<genomics::ReadPair> pairs;
};

/** Build a dataset from its config. */
Dataset buildDataset(const DatasetConfig &config);

/**
 * Build the three paper datasets over one shared genome (cheaper than
 * three genome constructions; the paper also maps all three sets against
 * the same GRCh38).
 */
std::vector<Dataset> buildPaperDatasets(u64 genome_len, u64 num_pairs);

} // namespace simdata
} // namespace gpx

#endif // GPX_SIMDATA_DATASETS_HH
