#include "simdata/datasets.hh"

#include "util/logging.hh"

namespace gpx {
namespace simdata {

DatasetConfig
datasetConfig(u32 index, u64 genome_len, u64 num_pairs)
{
    gpx_assert(index >= 1 && index <= 3, "dataset index must be 1..3");
    DatasetConfig cfg;
    cfg.name = "Dataset " + std::to_string(index);
    cfg.genome.length = genome_len;
    cfg.genome.chromosomes = genome_len > (4u << 20) ? 4 : 2;
    cfg.genome.seed = 7; // shared genome across the three datasets
    cfg.variants.seed = 11;
    cfg.numPairs = num_pairs;

    cfg.reads.seed = 1000 + index;
    switch (index) {
      case 1:
        cfg.reads.errors.subRate = 0.0011;
        cfg.reads.insertMean = 400;
        cfg.reads.insertSd = 40;
        break;
      case 2:
        cfg.reads.errors.subRate = 0.0012;
        cfg.reads.insertMean = 380;
        cfg.reads.insertSd = 45;
        break;
      case 3:
        cfg.reads.errors.subRate = 0.0014;
        cfg.reads.insertMean = 420;
        cfg.reads.insertSd = 50;
        break;
    }
    return cfg;
}

Dataset
buildDataset(const DatasetConfig &config)
{
    Dataset ds;
    ds.name = config.name;
    ds.reference = std::make_unique<genomics::Reference>(
        generateGenome(config.genome));
    ds.diploid = std::make_unique<DiploidGenome>(*ds.reference,
                                                 config.variants);
    ReadSimulator sim(*ds.diploid, config.reads);
    ds.pairs = sim.simulate(config.numPairs);
    return ds;
}

std::vector<Dataset>
buildPaperDatasets(u64 genome_len, u64 num_pairs)
{
    std::vector<Dataset> out;
    for (u32 i = 1; i <= 3; ++i)
        out.push_back(buildDataset(datasetConfig(i, genome_len, num_pairs)));
    return out;
}

} // namespace simdata
} // namespace gpx
