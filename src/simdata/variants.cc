#include "simdata/variants.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace gpx {
namespace simdata {

using genomics::DnaSequence;
using util::Pcg32;

u64
Haplotype::toRefOffset(u64 hap_pos) const
{
    gpx_assert(!hapAnchor.empty(), "haplotype has no anchors");
    auto it = std::upper_bound(hapAnchor.begin(), hapAnchor.end(), hap_pos);
    std::size_t idx = static_cast<std::size_t>(it - hapAnchor.begin()) - 1;
    return refAnchor[idx] + (hap_pos - hapAnchor[idx]);
}

DiploidGenome::DiploidGenome(const genomics::Reference &ref,
                             const VariantParams &params)
    : ref_(&ref)
{
    generateVariants(params);
    materialize();
}

void
DiploidGenome::generateVariants(const VariantParams &params)
{
    Pcg32 rng(params.seed, 0xBEEF);
    for (u32 c = 0; c < ref_->numChromosomes(); ++c) {
        const DnaSequence &chrom = ref_->chromosome(c);
        u64 guard = 0; // next position allowed to carry a variant
        for (u64 p = 50; p + 50 < chrom.size(); ++p) {
            if (p < guard)
                continue;
            double r = rng.uniform();
            if (r < params.snpRate) {
                Variant v;
                v.chrom = c;
                v.pos = p;
                v.type = VariantType::Snp;
                v.refBase = chrom.at(p);
                v.altBase = static_cast<u8>(
                    (v.refBase + 1 + rng.below(3)) & 3u);
                v.genotype = rng.chance(params.hetFraction)
                                 ? (rng.chance(0.5) ? Genotype::Het1
                                                    : Genotype::Het2)
                                 : Genotype::Hom;
                variants_.push_back(std::move(v));
                guard = p + params.minSpacing;
            } else if (r < params.snpRate + params.indelRate) {
                Variant v;
                v.chrom = c;
                v.pos = p;
                u32 len = rng.extendLength(params.indelExtendProb,
                                           params.maxIndelLen);
                if (rng.chance(0.5)) {
                    v.type = VariantType::Insertion;
                    std::string ins;
                    for (u32 k = 0; k < len; ++k)
                        ins.push_back(genomics::baseToChar(rng.below(4)));
                    v.insSeq = DnaSequence(ins);
                } else {
                    v.type = VariantType::Deletion;
                    v.delLen = len;
                }
                v.genotype = rng.chance(params.hetFraction)
                                 ? (rng.chance(0.5) ? Genotype::Het1
                                                    : Genotype::Het2)
                                 : Genotype::Hom;
                variants_.push_back(std::move(v));
                guard = p + params.minSpacing + len;
            }
        }
    }
}

void
DiploidGenome::materialize()
{
    haplotypes_.assign(ref_->numChromosomes(), {});
    for (u32 c = 0; c < ref_->numChromosomes(); ++c) {
        haplotypes_[c].resize(2);
        const DnaSequence &chrom = ref_->chromosome(c);
        for (u32 hap = 0; hap < 2; ++hap) {
            Haplotype &h = haplotypes_[c][hap];
            h.hapAnchor.push_back(0);
            h.refAnchor.push_back(0);
            u64 ref_pos = 0;
            for (const Variant &v : variants_) {
                if (v.chrom != c || !v.onHaplotype(hap))
                    continue;
                // Copy reference bases up to the variant.
                while (ref_pos < v.pos) {
                    h.seq.push(chrom.at(ref_pos));
                    ++ref_pos;
                }
                switch (v.type) {
                  case VariantType::Snp:
                    h.seq.push(v.altBase);
                    ++ref_pos;
                    break;
                  case VariantType::Insertion:
                    // Consume the anchor base first (VCF-style POS base).
                    h.seq.push(chrom.at(ref_pos));
                    ++ref_pos;
                    h.seq.append(v.insSeq);
                    h.hapAnchor.push_back(h.seq.size());
                    h.refAnchor.push_back(ref_pos);
                    break;
                  case VariantType::Deletion:
                    h.seq.push(chrom.at(ref_pos));
                    ++ref_pos;
                    ref_pos += v.delLen;
                    h.hapAnchor.push_back(h.seq.size());
                    h.refAnchor.push_back(ref_pos);
                    break;
                }
            }
            while (ref_pos < chrom.size()) {
                h.seq.push(chrom.at(ref_pos));
                ++ref_pos;
            }
        }
    }
}

const Haplotype &
DiploidGenome::haplotype(u32 chrom, u32 hap) const
{
    gpx_assert(chrom < haplotypes_.size() && hap < 2,
               "haplotype index out of range");
    return haplotypes_[chrom][hap];
}

u64
DiploidGenome::totalHaplotypeLength() const
{
    u64 total = 0;
    for (const auto &chrom : haplotypes_) {
        for (const auto &h : chrom)
            total += h.seq.size();
    }
    return total;
}

} // namespace simdata
} // namespace gpx
