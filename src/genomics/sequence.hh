/**
 * @file
 * Two-bit packed DNA sequences and zero-copy views over them.
 *
 * Every sequence in the pipeline (reference chromosomes, reads, seeds) is a
 * DnaSequence: A=0, C=1, G=2, T=3, packed 4 bases per byte. The class also
 * exposes the two *bit-plane* views (low bit and high bit of each base code)
 * that the Light Alignment module's XOR datapath operates on (paper §5.4).
 *
 * DnaView is the non-owning counterpart: a (packed byte pointer, base
 * offset, length) triple over a live DnaSequence. All hot kernels —
 * reverse complement, equality, Hamming distance, bit-plane extraction,
 * slicing — operate on 64-bit packed words (32 bases per load) instead of
 * per-base extraction, and reference windows are handed out as views so
 * candidate inspection stops copying the reference one base at a time.
 */

#ifndef GPX_GENOMICS_SEQUENCE_HH
#define GPX_GENOMICS_SEQUENCE_HH

#include <bit>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.hh"

namespace gpx {
namespace genomics {

/** Base codes. */
enum Base : u8 { BaseA = 0, BaseC = 1, BaseG = 2, BaseT = 3 };

/** Decode a 2-bit base code to its ASCII character. */
char baseToChar(u8 code);

/**
 * Encode an ASCII base to its 2-bit code. Lower-case accepted; any
 * non-ACGT character (including N) maps to A, mirroring the common
 * mapper convention of arbitrarily resolving ambiguity codes.
 */
u8 charToBase(char c);

/** True when @p c is not an unambiguous ACGT/acgt character. */
bool isAmbiguousBase(char c);

/** Complement of a 2-bit base code (A<->T, C<->G). */
inline u8 complementBase(u8 code) { return code ^ 0x3u; }

namespace detail {

/** Byte-swap for the big-endian fallback of the word loads/stores. */
constexpr u64
byteswap64(u64 v)
{
    v = ((v & 0x00ff00ff00ff00ffull) << 8) | ((v >> 8) & 0x00ff00ff00ff00ffull);
    v = ((v & 0x0000ffff0000ffffull) << 16) |
        ((v >> 16) & 0x0000ffff0000ffffull);
    return (v << 32) | (v >> 32);
}

/**
 * Little-endian 64-bit load of up to @p avail bytes at @p p: byte k lands
 * at bits [8k, 8k+8). Bytes past @p avail read as zero, so loads near the
 * end of a packed buffer stay in bounds.
 */
inline u64
load64le(const u8 *p, std::size_t avail)
{
    if (avail >= 8) {
        u64 v;
        std::memcpy(&v, p, 8);
        if constexpr (std::endian::native == std::endian::big)
            v = byteswap64(v);
        return v;
    }
    u64 v = 0;
    for (std::size_t i = 0; i < avail; ++i)
        v |= static_cast<u64>(p[i]) << (8 * i);
    return v;
}

/** Little-endian store of the low @p nbytes bytes of @p v to @p p. */
inline void
store64le(u8 *p, u64 v, std::size_t nbytes)
{
    if (nbytes == 8) {
        if constexpr (std::endian::native == std::endian::big)
            v = byteswap64(v);
        std::memcpy(p, &v, 8);
        return;
    }
    for (std::size_t i = 0; i < nbytes; ++i)
        p[i] = static_cast<u8>(v >> (8 * i));
}

/** Compress the 32 even-indexed bits of @p x into bits [0, 32). */
constexpr u64
evenBits(u64 x)
{
    x &= 0x5555555555555555ull;
    x = (x | (x >> 1)) & 0x3333333333333333ull;
    x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0full;
    x = (x | (x >> 4)) & 0x00ff00ff00ff00ffull;
    x = (x | (x >> 8)) & 0x0000ffff0000ffffull;
    x = (x | (x >> 16)) & 0x00000000ffffffffull;
    return x;
}

/**
 * Reverse-complement all 32 bases of a packed word: base i moves to slot
 * 31-i and is complemented (2-bit complement == bitwise NOT).
 */
constexpr u64
revCompWord(u64 v)
{
    v = byteswap64(v);
    v = ((v & 0x0303030303030303ull) << 6) |
        ((v & 0x0c0c0c0c0c0c0c0cull) << 2) |
        ((v & 0x3030303030303030ull) >> 2) |
        ((v & 0xc0c0c0c0c0c0c0c0ull) >> 6);
    return ~v;
}

} // namespace detail

class DnaSequence;

/**
 * Non-owning view of a 2-bit packed base range: a packed byte pointer, a
 * sub-byte base offset and a length. Views alias the parent sequence's
 * storage, so they are valid only while the parent is alive and
 * unmodified — the intended use is handing out reference windows and
 * read slices to the mapping kernels without materializing copies.
 *
 * word(w) exposes 32 bases per 64-bit load (base 32w+i of the view at
 * bits [2i, 2i+2), zero-padded past the end), which is what the
 * word-parallel kernels (revComp, equality, Hamming, bit planes, Myers
 * edit distance, minimizer rolling hash) iterate over.
 */
class DnaView
{
  public:
    DnaView() = default;

    /** Whole-sequence view (implicit: any DnaSequence argument works). */
    DnaView(const DnaSequence &seq); // NOLINT(google-explicit-constructor)

    /**
     * A view of a temporary would dangle the moment the full expression
     * ends (e.g. `DnaView v = ref.window(...)` — window() returns an
     * owning copy; the zero-copy spelling is windowView()). Deleted so
     * the mistake is a compile error instead of a use-after-free.
     */
    DnaView(DnaSequence &&) = delete;

    /** View of [start, start+len) of @p seq. */
    DnaView(const DnaSequence &seq, std::size_t start, std::size_t len);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** 2-bit code of base i of the view. */
    u8
    at(std::size_t i) const
    {
        std::size_t b = off_ + i;
        return (bytes_[b >> 2] >> ((b & 3u) << 1)) & 0x3u;
    }

    /** Number of 32-base packed words covering the view. */
    std::size_t numWords() const { return (size_ + 31) / 32; }

    /**
     * Packed word w: bases [32w, 32w+32) of the view, base 32w+i at bits
     * [2i, 2i+2). Bits past the view's last base are zero.
     */
    u64
    word(std::size_t w) const
    {
        std::size_t base = off_ + 32 * w;
        std::size_t byteIdx = base >> 2;
        u32 shift = static_cast<u32>((base & 3u) << 1);
        u64 v = detail::load64le(bytes_ + byteIdx, bytesLen_ - byteIdx) >>
                shift;
        if (shift != 0 && byteIdx + 8 < bytesLen_)
            v |= static_cast<u64>(bytes_[byteIdx + 8]) << (64u - shift);
        std::size_t rem = size_ - 32 * w;
        if (rem < 32)
            v &= (u64{1} << (2 * rem)) - 1;
        return v;
    }

    /** Sub-view [start, start+len) of this view. */
    DnaView sub(std::size_t start, std::size_t len) const;

    /** Copy the viewed bases into an owning DnaSequence. */
    DnaSequence materialize() const;

    /** Word-parallel reverse complement into a fresh sequence. */
    DnaSequence revComp() const;

    /** Decode to ASCII. */
    std::string toString() const;

    /**
     * Write the view as packed bytes (4 bases per byte, LSB-first, tail
     * bits zero) to @p out, which must hold at least packedBytes() bytes.
     */
    void packTo(u8 *out) const;

    /**
     * Decode to one 2-bit code per byte: @p out must hold size() bytes.
     * The word-unpack counterpart of packTo() for DP kernels that want
     * flat byte operands.
     */
    void decodeTo(u8 *out) const;

    /** Bytes packTo() writes: ceil(size/4). */
    std::size_t packedBytes() const { return (size_ + 3) / 4; }

    /** Bit-plane extraction (see DnaSequence::bitPlanes), word-parallel. */
    void bitPlanes(std::vector<u64> &lo, std::vector<u64> &hi) const;

    /** Word-parallel base equality. */
    bool operator==(const DnaView &other) const;

    /** Raw aliased bytes (for overlap checks). */
    const u8 *rawBytes() const { return bytes_; }

  private:
    friend class DnaSequence;

    const u8 *bytes_ = nullptr;  ///< packed bytes, view starts inside [0]
    std::size_t bytesLen_ = 0;   ///< readable bytes at bytes_
    std::size_t off_ = 0;        ///< base offset of view start in bytes_[0]
    std::size_t size_ = 0;       ///< bases in the view
};

/** Word-parallel Hamming distance between equal-length views. */
u64 hammingDistance(const DnaView &a, const DnaView &b);

/**
 * Packed 2-bit DNA sequence with random access, slicing and
 * reverse-complement support.
 */
class DnaSequence
{
  public:
    DnaSequence() = default;

    /** Build from an ASCII string such as "ACGTT". */
    explicit DnaSequence(std::string_view ascii) : DnaSequence(ascii, nullptr)
    {
    }

    /**
     * Build from ASCII; when @p ambiguous is non-null, adds the number
     * of non-ACGT input characters (all encoded as A) to *ambiguous so
     * ingestion can surface corrupted/ambiguity-coded inputs.
     */
    DnaSequence(std::string_view ascii, u64 *ambiguous);

    /** Build from raw 2-bit codes. */
    static DnaSequence fromCodes(const std::vector<u8> &codes);

    /**
     * Adopt packed bytes (4 bases per byte, LSB-first). @p bytes must be
     * exactly ceil(n/4) long with zero tail bits past base n-1.
     */
    static DnaSequence fromPackedBytes(std::vector<u8> bytes, std::size_t n);

    /** Number of bases. */
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** 2-bit code of the base at index i. */
    u8
    at(std::size_t i) const
    {
        return (packed_[i >> 2] >> ((i & 3u) << 1)) & 0x3u;
    }

    /** Append one 2-bit base code. */
    void push(u8 code);

    /** Append another sequence (or any view; word-parallel). */
    void append(const DnaView &other);

    /** Overwrite the base at index i. */
    void set(std::size_t i, u8 code);

    /** Zero-copy view of the whole sequence. */
    DnaView view() const { return DnaView(*this); }

    /** Zero-copy view of [start, start+len). */
    DnaView view(std::size_t start, std::size_t len) const
    {
        return DnaView(*this, start, len);
    }

    /** Extract the subsequence [start, start+len) as an owning copy. */
    DnaSequence sub(std::size_t start, std::size_t len) const;

    /** Reverse complement (word-parallel). */
    DnaSequence revComp() const { return view().revComp(); }

    /**
     * Overwrite this sequence with the reverse complement of @p src,
     * reusing the packed storage (no allocation once warm). @p src must
     * not alias this sequence's own storage. The batched mapping stages
     * recompute read orientations per pair; this is their
     * allocation-free path.
     */
    void assignRevComp(const DnaView &src);

    /** Decode to ASCII. */
    std::string toString() const { return view().toString(); }

    /** Packed bytes (4 bases per byte, LSB-first); used for hashing. */
    const std::vector<u8> &packed() const { return packed_; }

    /**
     * Bit-plane extraction for the SHD/XOR datapath: writes one u64 word
     * stream per plane where bit i of word w corresponds to base
     * (64*w + i). lo holds bit0 of each base code, hi holds bit1.
     */
    void
    bitPlanes(std::vector<u64> &lo, std::vector<u64> &hi) const
    {
        view().bitPlanes(lo, hi);
    }

    bool
    operator==(const DnaSequence &other) const
    {
        return view() == other.view();
    }

  private:
    std::vector<u8> packed_;
    std::size_t size_ = 0;
};

/** Hamming distance between equal-length sequences (word-parallel). */
inline u64
hammingDistance(const DnaSequence &a, const DnaSequence &b)
{
    return hammingDistance(a.view(), b.view());
}

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_SEQUENCE_HH
