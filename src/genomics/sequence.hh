/**
 * @file
 * Two-bit packed DNA sequences.
 *
 * Every sequence in the pipeline (reference chromosomes, reads, seeds) is a
 * DnaSequence: A=0, C=1, G=2, T=3, packed 4 bases per byte. The class also
 * exposes the two *bit-plane* views (low bit and high bit of each base code)
 * that the Light Alignment module's XOR datapath operates on (paper §5.4).
 */

#ifndef GPX_GENOMICS_SEQUENCE_HH
#define GPX_GENOMICS_SEQUENCE_HH

#include <string>
#include <string_view>
#include <vector>

#include "util/types.hh"

namespace gpx {
namespace genomics {

/** Base codes. */
enum Base : u8 { BaseA = 0, BaseC = 1, BaseG = 2, BaseT = 3 };

/** Decode a 2-bit base code to its ASCII character. */
char baseToChar(u8 code);

/**
 * Encode an ASCII base to its 2-bit code. Lower-case accepted; any
 * non-ACGT character (including N) maps to A, mirroring the common
 * mapper convention of arbitrarily resolving ambiguity codes.
 */
u8 charToBase(char c);

/** Complement of a 2-bit base code (A<->T, C<->G). */
inline u8 complementBase(u8 code) { return code ^ 0x3u; }

/**
 * Packed 2-bit DNA sequence with random access, slicing and
 * reverse-complement support.
 */
class DnaSequence
{
  public:
    DnaSequence() = default;

    /** Build from an ASCII string such as "ACGTT". */
    explicit DnaSequence(std::string_view ascii);

    /** Build from raw 2-bit codes. */
    static DnaSequence fromCodes(const std::vector<u8> &codes);

    /** Number of bases. */
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** 2-bit code of the base at index i. */
    u8
    at(std::size_t i) const
    {
        return (packed_[i >> 2] >> ((i & 3u) << 1)) & 0x3u;
    }

    /** Append one 2-bit base code. */
    void push(u8 code);

    /** Append another sequence. */
    void append(const DnaSequence &other);

    /** Overwrite the base at index i. */
    void set(std::size_t i, u8 code);

    /** Extract the subsequence [start, start+len). */
    DnaSequence sub(std::size_t start, std::size_t len) const;

    /** Reverse complement. */
    DnaSequence revComp() const;

    /** Decode to ASCII. */
    std::string toString() const;

    /** Packed bytes (4 bases per byte, LSB-first); used for hashing. */
    const std::vector<u8> &packed() const { return packed_; }

    /**
     * Bit-plane extraction for the SHD/XOR datapath: writes one u64 word
     * stream per plane where bit i of word w corresponds to base
     * (64*w + i). lo holds bit0 of each base code, hi holds bit1.
     */
    void bitPlanes(std::vector<u64> &lo, std::vector<u64> &hi) const;

    bool operator==(const DnaSequence &other) const;

  private:
    std::vector<u8> packed_;
    std::size_t size_ = 0;
};

/** Hamming distance between equal-length sequences. */
u64 hammingDistance(const DnaSequence &a, const DnaSequence &b);

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_SEQUENCE_HH
