#include "genomics/scoring.hh"

#include "util/logging.hh"

namespace gpx {
namespace genomics {

i32
ScoringScheme::scoreFromCounts(u32 matches, u32 mismatches,
                               const std::vector<u32> &gaps) const
{
    i64 score = static_cast<i64>(matches) * match -
                static_cast<i64>(mismatches) * mismatch;
    for (u32 g : gaps)
        score -= gapCost(g);
    return static_cast<i32>(score);
}

i32
ScoringScheme::scoreAlignment(const DnaSequence &read, const DnaSequence &ref,
                              const Cigar &cigar) const
{
    std::size_t qi = 0;
    std::size_t ri = 0;
    i64 score = 0;
    for (const auto &e : cigar.elems()) {
        switch (e.op) {
          case CigarOp::Match:
          case CigarOp::Equal:
          case CigarOp::Diff:
            for (u32 k = 0; k < e.len; ++k) {
                gpx_assert(qi < read.size() && ri < ref.size(),
                           "CIGAR overruns sequences");
                score += read.at(qi) == ref.at(ri) ? match : -mismatch;
                ++qi;
                ++ri;
            }
            break;
          case CigarOp::Insertion:
            score -= gapCost(e.len);
            qi += e.len;
            break;
          case CigarOp::Deletion:
            score -= gapCost(e.len);
            ri += e.len;
            break;
          case CigarOp::SoftClip:
            qi += e.len;
            break;
        }
    }
    return static_cast<i32>(score);
}

} // namespace genomics
} // namespace gpx
