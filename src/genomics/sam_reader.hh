/**
 * @file
 * SAM text reader: the inverse of SamWriter, covering the mandatory
 * columns plus the AS score tag the pipelines emit. Downstream users
 * bring SAM produced by other mappers too, so the parser validates
 * rather than assumes: malformed mandatory columns are reported per
 * record, never silently skipped.
 */

#ifndef GPX_GENOMICS_SAM_READER_HH
#define GPX_GENOMICS_SAM_READER_HH

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "genomics/cigar.hh"
#include "genomics/reference.hh"
#include "util/types.hh"

namespace gpx {
namespace genomics {

/** One alignment line of a SAM file. */
struct SamRecord
{
    std::string qname;
    u32 flags = 0;
    std::string rname = "*";
    u64 pos1 = 0; ///< 1-based leftmost position, 0 if unmapped
    u8 mapq = 0;
    Cigar cigar;
    std::string rnext = "*";
    u64 pnext1 = 0;
    i64 tlen = 0;
    std::string seq;
    std::optional<i32> alignScore; ///< AS:i tag when present

    bool isMapped() const { return (flags & 0x4u) == 0; }
    bool isReverse() const { return (flags & 0x10u) != 0; }
    bool isFirstInPair() const { return (flags & 0x40u) != 0; }
    bool isSecondInPair() const { return (flags & 0x80u) != 0; }
};

/** Result of parsing a SAM stream. */
struct SamFile
{
    std::vector<std::string> headerLines;
    std::vector<SamRecord> records;
    /** Lines that failed to parse, with their 1-based line numbers. */
    std::vector<std::pair<u64, std::string>> badLines;
};

/** Parse a SAM stream; never throws, bad lines land in badLines. */
SamFile readSam(std::istream &is);

/**
 * Global position of a record on @p ref (0-based), or std::nullopt if
 * the record is unmapped or names an unknown chromosome.
 */
std::optional<GlobalPos> recordGlobalPos(const SamRecord &record,
                                         const Reference &ref);

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_SAM_READER_HH
