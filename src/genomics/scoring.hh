/**
 * @file
 * Affine-gap alignment scoring model.
 *
 * GenPair adopts Minimap2's short-read scoring scheme (paper §3.4): match
 * +A, mismatch -B, and a two-piece affine gap penalty
 * cost(k) = min(q1 + k*e1, q2 + k*e2). With the sr preset
 * (A=2, B=8, q1=12, e1=2, q2=32, e2=1) a perfect 150 bp alignment scores
 * 300 and the edit table of paper Table 1 follows exactly.
 */

#ifndef GPX_GENOMICS_SCORING_HH
#define GPX_GENOMICS_SCORING_HH

#include "genomics/cigar.hh"
#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace genomics {

/** Affine-gap scoring parameters (Minimap2 conventions). */
struct ScoringScheme
{
    i32 match = 2;       ///< score of a matching base (+A)
    i32 mismatch = 8;    ///< penalty of a mismatching base (-B)
    i32 gapOpen1 = 12;   ///< first gap-open penalty (q1)
    i32 gapExtend1 = 2;  ///< first gap-extend penalty (e1)
    i32 gapOpen2 = 32;   ///< second gap-open penalty (q2)
    i32 gapExtend2 = 1;  ///< second gap-extend penalty (e2)

    /** Minimap2 short-read (sr) preset, the paper's scheme. */
    static ScoringScheme shortRead() { return {}; }

    /** Cost of a gap of length k: min(q1 + k*e1, q2 + k*e2). */
    i32
    gapCost(u32 k) const
    {
        if (k == 0)
            return 0;
        i64 c1 = gapOpen1 + static_cast<i64>(k) * gapExtend1;
        i64 c2 = gapOpen2 + static_cast<i64>(k) * gapExtend2;
        return static_cast<i32>(c1 < c2 ? c1 : c2);
    }

    /** Score of a perfect alignment of the given read length. */
    i32
    perfectScore(u32 read_len) const
    {
        return static_cast<i32>(read_len) * match;
    }

    /**
     * Score of an alignment with the given composition.
     *
     * @param matches Number of exactly matching bases.
     * @param mismatches Number of mismatching bases.
     * @param gaps Lengths of each contiguous gap (insertions or
     *             deletions), each charged the affine cost.
     */
    i32 scoreFromCounts(u32 matches, u32 mismatches,
                        const std::vector<u32> &gaps) const;

    /**
     * Score a CIGAR against concrete sequences; M runs are split into
     * matches and mismatches by comparing bases.
     *
     * @param read The read sequence.
     * @param ref Reference window starting at the alignment position.
     * @param cigar Alignment to score.
     */
    i32 scoreAlignment(const DnaSequence &read, const DnaSequence &ref,
                       const Cigar &cigar) const;
};

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_SCORING_HH
