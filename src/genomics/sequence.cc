#include "genomics/sequence.hh"

#include <algorithm>
#include <array>

#include "util/logging.hh"

namespace gpx {
namespace genomics {

namespace {

/** char -> 2-bit code (non-ACGT maps to A). */
constexpr std::array<u8, 256>
makeCodeTable()
{
    std::array<u8, 256> t{};
    t[static_cast<u8>('C')] = t[static_cast<u8>('c')] = BaseC;
    t[static_cast<u8>('G')] = t[static_cast<u8>('g')] = BaseG;
    t[static_cast<u8>('T')] = t[static_cast<u8>('t')] = BaseT;
    return t;
}

/** char -> 1 when not an unambiguous ACGT/acgt character. */
constexpr std::array<u8, 256>
makeAmbigTable()
{
    std::array<u8, 256> t{};
    t.fill(1);
    for (char c : { 'A', 'a', 'C', 'c', 'G', 'g', 'T', 't' })
        t[static_cast<u8>(c)] = 0;
    return t;
}

constexpr auto kCodeTable = makeCodeTable();
constexpr auto kAmbigTable = makeAmbigTable();

/**
 * Streams 2-bit payloads of arbitrary bit width into a packed byte
 * vector, LSB-first — the write-side counterpart of DnaView::word().
 */
struct PackedWriter
{
    std::vector<u8> &out;
    u64 acc = 0;
    u32 bits = 0;

    explicit PackedWriter(std::vector<u8> &o) : out(o) {}

    /** Append the low @p nbits bits of @p v (nbits <= 64). */
    void
    push(u64 v, u32 nbits)
    {
        pushSmall(v & 0xffffffffull, std::min<u32>(nbits, 32));
        if (nbits > 32)
            pushSmall(v >> 32, nbits - 32);
    }

    /** nbits <= 32; keeps the accumulator under one byte afterwards. */
    void
    pushSmall(u64 v, u32 nbits)
    {
        if (nbits < 32)
            v &= (u64{1} << nbits) - 1;
        acc |= v << bits;
        bits += nbits;
        while (bits >= 8) {
            out.push_back(static_cast<u8>(acc));
            acc >>= 8;
            bits -= 8;
        }
    }

    void
    finish()
    {
        if (bits > 0) {
            out.push_back(static_cast<u8>(acc));
            acc = 0;
            bits = 0;
        }
    }
};

} // namespace

char
baseToChar(u8 code)
{
    static const char table[4] = { 'A', 'C', 'G', 'T' };
    return table[code & 0x3u];
}

u8
charToBase(char c)
{
    return kCodeTable[static_cast<u8>(c)];
}

bool
isAmbiguousBase(char c)
{
    return kAmbigTable[static_cast<u8>(c)] != 0;
}

// ---------------------------------------------------------------------------
// DnaView
// ---------------------------------------------------------------------------

DnaView::DnaView(const DnaSequence &seq)
    : bytes_(seq.packed().data()), bytesLen_(seq.packed().size()), off_(0),
      size_(seq.size())
{
}

DnaView::DnaView(const DnaSequence &seq, std::size_t start, std::size_t len)
{
    gpx_assert(start + len <= seq.size(), "view out of range: start=", start,
               " len=", len, " size=", seq.size());
    bytes_ = seq.packed().data() + (start >> 2);
    bytesLen_ = seq.packed().size() - (start >> 2);
    off_ = start & 3u;
    size_ = len;
}

DnaView
DnaView::sub(std::size_t start, std::size_t len) const
{
    gpx_assert(start + len <= size_, "sub-view out of range: start=", start,
               " len=", len, " size=", size_);
    DnaView v;
    std::size_t base = off_ + start;
    v.bytes_ = bytes_ + (base >> 2);
    v.bytesLen_ = bytesLen_ - (base >> 2);
    v.off_ = base & 3u;
    v.size_ = len;
    return v;
}

void
DnaView::packTo(u8 *out) const
{
    if (size_ == 0)
        return;
    std::size_t nbytes = packedBytes();
    if (off_ == 0) {
        // Byte-aligned: straight copy plus a masked tail byte.
        std::memcpy(out, bytes_, nbytes);
        if ((size_ & 3u) != 0)
            out[nbytes - 1] &=
                static_cast<u8>((1u << ((size_ & 3u) << 1)) - 1);
        return;
    }
    std::size_t nw = numWords();
    for (std::size_t w = 0; w < nw; ++w)
        detail::store64le(out + 8 * w, word(w),
                          std::min<std::size_t>(8, nbytes - 8 * w));
}

void
DnaView::decodeTo(u8 *out) const
{
    const std::size_t nw = numWords();
    for (std::size_t w = 0; w < nw; ++w) {
        u64 v = word(w);
        const std::size_t rem = std::min<std::size_t>(32, size_ - 32 * w);
        for (std::size_t i = 0; i < rem; ++i) {
            out[32 * w + i] = static_cast<u8>(v & 0x3u);
            v >>= 2;
        }
    }
}

DnaSequence
DnaView::materialize() const
{
    std::vector<u8> bytes(packedBytes());
    packTo(bytes.data());
    return DnaSequence::fromPackedBytes(std::move(bytes), size_);
}

DnaSequence
DnaView::revComp() const
{
    std::vector<u8> bytes;
    bytes.reserve(packedBytes());
    PackedWriter wr(bytes);
    for (std::size_t w = numWords(); w > 0; --w) {
        std::size_t rem = std::min<std::size_t>(32, size_ - 32 * (w - 1));
        // word() zero-pads past the end; the pad becomes the low fields
        // of the reversed word and is shifted out below.
        u64 rc = detail::revCompWord(word(w - 1));
        rc >>= 64 - 2 * rem;
        wr.push(rc, static_cast<u32>(2 * rem));
    }
    wr.finish();
    return DnaSequence::fromPackedBytes(std::move(bytes), size_);
}

void
DnaSequence::assignRevComp(const DnaView &src)
{
    gpx_assert(packed_.data() == nullptr ||
                   src.rawBytes() != packed_.data(),
               "assignRevComp source must not alias the destination");
    packed_.clear();
    PackedWriter wr(packed_);
    const std::size_t n = src.size();
    for (std::size_t w = src.numWords(); w > 0; --w) {
        std::size_t rem = std::min<std::size_t>(32, n - 32 * (w - 1));
        u64 rc = detail::revCompWord(src.word(w - 1));
        rc >>= 64 - 2 * rem;
        wr.push(rc, static_cast<u32>(2 * rem));
    }
    wr.finish();
    size_ = n;
}

std::string
DnaView::toString() const
{
    std::string s;
    s.reserve(size_);
    std::size_t nw = numWords();
    for (std::size_t w = 0; w < nw; ++w) {
        u64 v = word(w);
        std::size_t rem = std::min<std::size_t>(32, size_ - 32 * w);
        for (std::size_t i = 0; i < rem; ++i) {
            s.push_back(baseToChar(v & 0x3u));
            v >>= 2;
        }
    }
    return s;
}

void
DnaView::bitPlanes(std::vector<u64> &lo, std::vector<u64> &hi) const
{
    std::size_t words = (size_ + 63) / 64;
    lo.resize(words);
    hi.resize(words);
    std::size_t nw = numWords();
    for (std::size_t w = 0; w < words; ++w) {
        u64 v0 = word(2 * w);
        u64 v1 = 2 * w + 1 < nw ? word(2 * w + 1) : 0;
        lo[w] = detail::evenBits(v0) | (detail::evenBits(v1) << 32);
        hi[w] = detail::evenBits(v0 >> 1) | (detail::evenBits(v1 >> 1) << 32);
    }
}

bool
DnaView::operator==(const DnaView &other) const
{
    if (size_ != other.size_)
        return false;
    std::size_t nw = numWords();
    for (std::size_t w = 0; w < nw; ++w) {
        if (word(w) != other.word(w))
            return false;
    }
    return true;
}

u64
hammingDistance(const DnaView &a, const DnaView &b)
{
    gpx_assert(a.size() == b.size(), "hammingDistance: length mismatch");
    u64 d = 0;
    std::size_t nw = a.numWords();
    for (std::size_t w = 0; w < nw; ++w) {
        u64 x = a.word(w) ^ b.word(w);
        // Collapse each differing 2-bit field onto its low bit.
        u64 diff = (x | (x >> 1)) & 0x5555555555555555ull;
        d += static_cast<u64>(std::popcount(diff));
    }
    return d;
}

// ---------------------------------------------------------------------------
// DnaSequence
// ---------------------------------------------------------------------------

DnaSequence::DnaSequence(std::string_view ascii, u64 *ambiguous)
{
    packed_.assign((ascii.size() + 3) / 4, 0);
    u64 ambig = 0;
    std::size_t i = 0;
    for (char c : ascii) {
        u8 uc = static_cast<u8>(c);
        packed_[i >> 2] |= static_cast<u8>(kCodeTable[uc] << ((i & 3u) << 1));
        ambig += kAmbigTable[uc];
        ++i;
    }
    size_ = ascii.size();
    if (ambiguous != nullptr)
        *ambiguous += ambig;
}

DnaSequence
DnaSequence::fromCodes(const std::vector<u8> &codes)
{
    DnaSequence s;
    s.packed_.reserve((codes.size() + 3) / 4);
    for (u8 c : codes)
        s.push(c);
    return s;
}

DnaSequence
DnaSequence::fromPackedBytes(std::vector<u8> bytes, std::size_t n)
{
    gpx_assert(bytes.size() == (n + 3) / 4,
               "fromPackedBytes: byte count does not match base count");
    gpx_assert((n & 3u) == 0 || bytes.empty() ||
                   (bytes.back() >> ((n & 3u) << 1)) == 0,
               "fromPackedBytes: nonzero tail bits");
    DnaSequence s;
    s.packed_ = std::move(bytes);
    s.size_ = n;
    return s;
}

void
DnaSequence::push(u8 code)
{
    if ((size_ & 3u) == 0)
        packed_.push_back(0);
    packed_.back() |= static_cast<u8>((code & 0x3u) << ((size_ & 3u) << 1));
    ++size_;
}

void
DnaSequence::append(const DnaView &other)
{
    if (other.empty())
        return;
    // A view into our own storage would dangle across reallocation.
    DnaSequence copy;
    DnaView src = other;
    if (!packed_.empty() && other.rawBytes() >= packed_.data() &&
        other.rawBytes() < packed_.data() + packed_.size()) {
        copy = other.materialize();
        src = copy.view();
    }
    packed_.reserve((size_ + src.size() + 3) / 4);
    PackedWriter wr(packed_);
    if ((size_ & 3u) != 0) {
        // Re-open the partial tail byte so the writer continues it.
        wr.acc = packed_.back();
        wr.bits = static_cast<u32>((size_ & 3u) << 1);
        packed_.pop_back();
    }
    std::size_t nw = src.numWords();
    for (std::size_t w = 0; w < nw; ++w) {
        std::size_t rem = std::min<std::size_t>(32, src.size() - 32 * w);
        wr.push(src.word(w), static_cast<u32>(2 * rem));
    }
    wr.finish();
    size_ += src.size();
}

void
DnaSequence::set(std::size_t i, u8 code)
{
    gpx_assert(i < size_, "set out of range");
    u8 shift = static_cast<u8>((i & 3u) << 1);
    packed_[i >> 2] = static_cast<u8>(
        (packed_[i >> 2] & ~(0x3u << shift)) | ((code & 0x3u) << shift));
}

DnaSequence
DnaSequence::sub(std::size_t start, std::size_t len) const
{
    gpx_assert(start + len <= size_, "sub out of range: start=", start,
               " len=", len, " size=", size_);
    return view(start, len).materialize();
}

} // namespace genomics
} // namespace gpx
