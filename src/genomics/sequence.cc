#include "genomics/sequence.hh"

#include "util/logging.hh"

namespace gpx {
namespace genomics {

char
baseToChar(u8 code)
{
    static const char table[4] = { 'A', 'C', 'G', 'T' };
    return table[code & 0x3u];
}

u8
charToBase(char c)
{
    switch (c) {
      case 'A': case 'a': return BaseA;
      case 'C': case 'c': return BaseC;
      case 'G': case 'g': return BaseG;
      case 'T': case 't': return BaseT;
      default: return BaseA;
    }
}

DnaSequence::DnaSequence(std::string_view ascii)
{
    packed_.reserve((ascii.size() + 3) / 4);
    for (char c : ascii)
        push(charToBase(c));
}

DnaSequence
DnaSequence::fromCodes(const std::vector<u8> &codes)
{
    DnaSequence s;
    s.packed_.reserve((codes.size() + 3) / 4);
    for (u8 c : codes)
        s.push(c);
    return s;
}

void
DnaSequence::push(u8 code)
{
    if ((size_ & 3u) == 0)
        packed_.push_back(0);
    packed_.back() |= static_cast<u8>((code & 0x3u) << ((size_ & 3u) << 1));
    ++size_;
}

void
DnaSequence::append(const DnaSequence &other)
{
    for (std::size_t i = 0; i < other.size(); ++i)
        push(other.at(i));
}

void
DnaSequence::set(std::size_t i, u8 code)
{
    gpx_assert(i < size_, "set out of range");
    u8 shift = static_cast<u8>((i & 3u) << 1);
    packed_[i >> 2] = static_cast<u8>(
        (packed_[i >> 2] & ~(0x3u << shift)) | ((code & 0x3u) << shift));
}

DnaSequence
DnaSequence::sub(std::size_t start, std::size_t len) const
{
    gpx_assert(start + len <= size_, "sub out of range: start=", start,
               " len=", len, " size=", size_);
    DnaSequence out;
    out.packed_.reserve((len + 3) / 4);
    for (std::size_t i = 0; i < len; ++i)
        out.push(at(start + i));
    return out;
}

DnaSequence
DnaSequence::revComp() const
{
    DnaSequence out;
    out.packed_.reserve(packed_.size());
    for (std::size_t i = size_; i > 0; --i)
        out.push(complementBase(at(i - 1)));
    return out;
}

std::string
DnaSequence::toString() const
{
    std::string s;
    s.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        s.push_back(baseToChar(at(i)));
    return s;
}

void
DnaSequence::bitPlanes(std::vector<u64> &lo, std::vector<u64> &hi) const
{
    std::size_t words = (size_ + 63) / 64;
    lo.assign(words, 0);
    hi.assign(words, 0);
    for (std::size_t i = 0; i < size_; ++i) {
        u8 code = at(i);
        if (code & 1u)
            lo[i >> 6] |= u64{1} << (i & 63u);
        if (code & 2u)
            hi[i >> 6] |= u64{1} << (i & 63u);
    }
}

bool
DnaSequence::operator==(const DnaSequence &other) const
{
    if (size_ != other.size_)
        return false;
    for (std::size_t i = 0; i < size_; ++i) {
        if (at(i) != other.at(i))
            return false;
    }
    return true;
}

u64
hammingDistance(const DnaSequence &a, const DnaSequence &b)
{
    gpx_assert(a.size() == b.size(), "hammingDistance: length mismatch");
    u64 d = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        d += a.at(i) != b.at(i);
    return d;
}

} // namespace genomics
} // namespace gpx
