/**
 * @file
 * SAM (Sequence Alignment/Map) serialization.
 *
 * The paper's pipelines emit BAM for the variant-calling study (§6);
 * this writer produces the equivalent SAM text so GenPairX mappings can
 * flow into standard downstream tooling. Flags follow the SAM v1
 * specification for paired-end FR data.
 */

#ifndef GPX_GENOMICS_SAM_HH
#define GPX_GENOMICS_SAM_HH

#include <iosfwd>
#include <string>

#include "genomics/readpair.hh"
#include "genomics/reference.hh"

namespace gpx {
namespace genomics {

/** SAM FLAG bits (SAM v1 §1.4.2). */
enum SamFlag : u32
{
    kSamPaired = 0x1,
    kSamProperPair = 0x2,
    kSamUnmapped = 0x4,
    kSamMateUnmapped = 0x8,
    kSamReverse = 0x10,
    kSamMateReverse = 0x20,
    kSamFirstInPair = 0x40,
    kSamSecondInPair = 0x80,
};

/** Writes SAM records for mapped read pairs. */
class SamWriter
{
  public:
    /**
     * @param os Output stream.
     * @param ref Reference (for @SQ headers and coordinate conversion).
     * @param max_proper_insert TLEN bound for the proper-pair flag.
     */
    SamWriter(std::ostream &os, const Reference &ref,
              u32 max_proper_insert = 1200);

    /** Emit the @HD/@SQ/@PG header block. */
    void writeHeader();

    /** Emit the two records of a mapped pair. */
    void writePair(const ReadPair &pair, const PairMapping &mapping);

    /**
     * Emit @p n pairs as one stream write: records render into an
     * in-memory buffer first, so the output stream sees one large
     * write per batch instead of ~a dozen small ones per record.
     * Byte-identical to n writePair() calls (same rendering code).
     */
    void writePairBatch(const ReadPair *pairs, const PairMapping *mappings,
                        std::size_t n);

    /** Emit one single-end record (long reads). */
    void writeRead(const Read &read, const Mapping &mapping);

    /**
     * Name the output (a path for the batch tools, a role for the
     * daemon's reply buffers) and check the stream after *every*
     * write: a short write or ENOSPC fails right at the offending
     * batch with the label and byte offset in the diagnostic, instead
     * of surfacing — or not — at stream close. With @p fatal_on_error
     * the first failure kills the process (the batch tools' fatal
     * discipline); without it the failure latches into writeFailed()
     * and all further output is dropped, so a recoverable caller (the
     * serve daemon) can fail one request and keep the process.
     */
    void checkWrites(std::string label, bool fatal_on_error);

    /** True once a checked write failed (non-fatal mode). */
    bool writeFailed() const { return writeFailed_; }
    /** Diagnostic of the failed write (label + byte offset). */
    const std::string &writeError() const { return writeError_; }
    /** Payload bytes successfully handed to the stream. */
    u64 bytesWritten() const { return bytesWritten_; }

    /** Records written so far. */
    u64 recordsWritten() const { return records_; }

  private:
    void writeRecord(std::ostream &os, const Read &read,
                     const Mapping &mapping, u32 flags,
                     const Mapping *mate, i64 tlen);
    void writePairTo(std::ostream &os, const ReadPair &pair,
                     const PairMapping &mapping);
    /** Sole stream toucher: every emission funnels through here. */
    void commit(const std::string &rendered);

    std::ostream &os_;
    const Reference &ref_;
    u32 maxProperInsert_;
    u64 records_ = 0;
    std::string outputLabel_;
    bool checkWrites_ = false;
    bool fatalOnError_ = false;
    bool writeFailed_ = false;
    std::string writeError_;
    u64 bytesWritten_ = 0;
};

/**
 * Mapping quality estimate from the score gap between the best and
 * second-best alignment (Li-Durbin-style, capped at 60).
 */
u8 mapqFromScores(i32 best, i32 second_best, i32 perfect);

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_SAM_HH
