/**
 * @file
 * Read, read-pair and mapping-result value types shared by the baseline
 * mapper, GenPair and the evaluation stack.
 */

#ifndef GPX_GENOMICS_READPAIR_HH
#define GPX_GENOMICS_READPAIR_HH

#include <string>

#include "genomics/cigar.hh"
#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace genomics {

/** A single sequenced read. */
struct Read
{
    std::string name;
    DnaSequence seq;

    /**
     * Ground-truth origin for simulated reads: global position of the
     * read's first base on the forward strand, and its strand.
     * kInvalidPos when unknown (real data).
     */
    GlobalPos truthPos = kInvalidPos;
    bool truthReverse = false;
};

/** A paired-end read: two reads from opposite ends of one fragment. */
struct ReadPair
{
    Read first;  ///< read 1 (sequenced 5'->3' from one fragment end)
    Read second; ///< read 2 (sequenced from the opposite end)
};

/** Mapping of one read to the reference. */
struct Mapping
{
    bool mapped = false;
    GlobalPos pos = kInvalidPos; ///< leftmost reference base of alignment
    bool reverse = false;        ///< read aligned as its reverse complement
    i32 score = 0;
    Cigar cigar;
};

/** Which engine produced a pair's final alignment (paper Fig. 10). */
enum class MappingPath : u8
{
    LightAligned,     ///< GenPair fast path end-to-end
    DpAlignFallback,  ///< candidates from GenPair, alignment by DP
    FullDpFallback,   ///< seeding/chaining/alignment all by the DP pipeline
    Unmapped,
};

/** Mapping of a full read pair. */
struct PairMapping
{
    Mapping first;
    Mapping second;
    MappingPath path = MappingPath::Unmapped;

    bool bothMapped() const { return first.mapped && second.mapped; }
};

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_READPAIR_HH
