/**
 * @file
 * CIGAR (Compact Idiosyncratic Gapped Alignment Report) strings.
 *
 * Both the Light Alignment fast path and the DP fallback emit alignments as
 * CIGARs (paper §2, §4.6); the variant caller consumes them to build
 * pileups.
 */

#ifndef GPX_GENOMICS_CIGAR_HH
#define GPX_GENOMICS_CIGAR_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace gpx {
namespace genomics {

/** CIGAR operation codes (SAM semantics). */
enum class CigarOp : u8
{
    Match,     ///< 'M': alignment match (base match or mismatch)
    Insertion, ///< 'I': insertion to the reference (extra read bases)
    Deletion,  ///< 'D': deletion from the reference (missing read bases)
    SoftClip,  ///< 'S': clipped read bases
    Equal,     ///< '=': exact base match
    Diff,      ///< 'X': base mismatch
};

/** ASCII letter of an operation. */
char cigarOpChar(CigarOp op);

/** One run-length encoded CIGAR element. */
struct CigarElem
{
    CigarOp op;
    u32 len;

    bool
    operator==(const CigarElem &other) const
    {
        return op == other.op && len == other.len;
    }
};

/** A full CIGAR: run-length encoded alignment description. */
class Cigar
{
  public:
    Cigar() = default;
    explicit Cigar(std::vector<CigarElem> elems) : elems_(std::move(elems)) {}

    /** Parse a textual CIGAR such as "42M2I106M". */
    static Cigar parse(const std::string &text);

    /** Append an operation, merging with the tail when ops match. */
    void push(CigarOp op, u32 len);

    const std::vector<CigarElem> &elems() const { return elems_; }
    bool empty() const { return elems_.empty(); }

    /** Number of read bases consumed (M/I/S/=/X). */
    u64 querySpan() const;
    /** Number of reference bases consumed (M/D/=/X). */
    u64 refSpan() const;

    /** Total inserted bases. */
    u64 insertedBases() const;
    /** Total deleted bases. */
    u64 deletedBases() const;

    /** Render as text. */
    std::string toString() const;

    bool operator==(const Cigar &other) const { return elems_ == other.elems_; }

  private:
    std::vector<CigarElem> elems_;
};

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_CIGAR_HH
