#include "genomics/fasta.hh"

#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace gpx {
namespace genomics {

void
writeFasta(std::ostream &os, const Reference &ref, std::size_t line_width)
{
    for (u32 c = 0; c < ref.numChromosomes(); ++c) {
        os << '>' << ref.name(c) << '\n';
        std::string seq = ref.chromosome(c).toString();
        for (std::size_t i = 0; i < seq.size(); i += line_width)
            os << seq.substr(i, line_width) << '\n';
    }
}

namespace {

/** Strip a trailing carriage return (CRLF-formatted input files). */
void
chompCr(std::string &line)
{
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
}

} // namespace

Reference
readFasta(std::istream &is, IngestStats *stats)
{
    Reference ref;
    std::string line;
    std::string name;
    std::string seq;
    u64 ambiguous = 0;
    auto flush = [&]() {
        if (!name.empty())
            ref.addChromosome(name, DnaSequence(seq, &ambiguous));
        name.clear();
        seq.clear();
    };
    while (std::getline(is, line)) {
        chompCr(line);
        if (line.empty())
            continue;
        if (line[0] == '>') {
            flush();
            std::size_t end = line.find_first_of(" \t", 1);
            name = line.substr(1, end == std::string::npos ? end : end - 1);
        } else {
            seq += line;
        }
    }
    flush();
    if (ambiguous > 0)
        gpx_warn("FASTA ingestion: ", ambiguous,
                 " ambiguous (non-ACGT) bases encoded as A");
    if (stats != nullptr)
        stats->ambiguousBases += ambiguous;
    return ref;
}

void
writeFastq(std::ostream &os, const std::vector<Read> &reads, char quality)
{
    for (const auto &r : reads) {
        std::string seq = r.seq.toString();
        os << '@' << r.name << '\n'
           << seq << '\n'
           << "+\n"
           << std::string(seq.size(), quality) << '\n';
    }
}

FastqReader::FastqReader(std::istream &is, u64 record_base,
                         std::atomic<bool> *warned_ambiguous)
    : ownedRaw_(std::make_unique<util::IstreamSource>(is)),
      ownedInflate_(std::make_unique<util::AutoInflateSource>(*ownedRaw_)),
      lines_(*ownedInflate_), recordBase_(record_base),
      sharedWarn_(warned_ambiguous)
{
}

FastqReader::FastqReader(util::ByteSource &source, u64 record_base,
                         std::atomic<bool> *warned_ambiguous)
    : lines_(source), recordBase_(record_base),
      sharedWarn_(warned_ambiguous)
{
}

bool
FastqReader::claimAmbiguousWarn()
{
    if (sharedWarn_ != nullptr)
        return !sharedWarn_->exchange(true);
    if (warnedAmbiguous_)
        return false;
    warnedAmbiguous_ = true;
    return true;
}

bool
FastqReader::next(Read &read)
{
    std::string error;
    switch (tryNext(read, &error)) {
    case FastqParse::kRecord:
        return true;
    case FastqParse::kEof:
        return false;
    case FastqParse::kError:
        gpx_fatal(error);
    }
    return false; // unreachable
}

FastqParse
FastqReader::tryNext(Read &read, std::string *error)
{
    if (poisoned_) {
        if (error != nullptr)
            *error = lastError_;
        return FastqParse::kError;
    }
    auto fail = [&](std::string msg) {
        poisoned_ = true;
        lastError_ = std::move(msg);
        if (error != nullptr)
            *error = lastError_;
        return FastqParse::kError;
    };
    std::string header, seq, plus, qual;
    while (lines_.getline(header)) {
        chompCr(header);
        if (header.empty())
            continue;
        if (header[0] != '@')
            return fail(util::detail::cat(
                "malformed FASTQ header at record ",
                recordBase_ + records_ + 1, ": expected '@', got '",
                header.substr(0, 40), "'"));
        if (!lines_.getline(seq) || !lines_.getline(plus) ||
            !lines_.getline(qual)) {
            if (!lines_.error().empty())
                return fail(lines_.error());
            return fail(util::detail::cat(
                "truncated FASTQ record: EOF mid-record at record ",
                recordBase_ + records_ + 1, " (header '", header, "')"));
        }
        chompCr(seq);
        std::size_t end = header.find_first_of(" \t", 1);
        read.name = header.substr(
            1, end == std::string::npos ? end : end - 1);
        u64 ambiguousBefore = stats_.ambiguousBases;
        read.seq = DnaSequence(seq, &stats_.ambiguousBases);
        if (stats_.ambiguousBases > ambiguousBefore &&
            claimAmbiguousWarn()) {
            gpx_warn("FASTQ ingestion: ambiguous (non-ACGT) bases encoded "
                     "as A, first in record ",
                     recordBase_ + records_ + 1, " ('", read.name,
                     "'); counting silently from here on");
        }
        read.truthPos = kInvalidPos;
        read.truthReverse = false;
        ++records_;
        return FastqParse::kRecord;
    }
    if (!lines_.error().empty())
        return fail(lines_.error());
    return FastqParse::kEof;
}

std::vector<Read>
readFastq(std::istream &is)
{
    std::vector<Read> reads;
    FastqReader reader(is);
    Read r;
    while (reader.next(r))
        reads.push_back(r);
    return reads;
}

} // namespace genomics
} // namespace gpx
