/**
 * @file
 * Minimal FASTA/FASTQ serialization. The repository generates its own
 * datasets, but examples demonstrate interoperability with the standard
 * formats a downstream user would bring.
 */

#ifndef GPX_GENOMICS_FASTA_HH
#define GPX_GENOMICS_FASTA_HH

#include <atomic>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "genomics/readpair.hh"
#include "genomics/reference.hh"
#include "util/byte_stream.hh"
#include "util/gzip_stream.hh"

namespace gpx {
namespace genomics {

/** Write a reference genome as multi-record FASTA. */
void writeFasta(std::ostream &os, const Reference &ref,
                std::size_t line_width = 70);

/**
 * Ingestion statistics: every reader counts the non-ACGT characters
 * (N and other IUPAC ambiguity codes, or plain corruption) it silently
 * encoded as A, so bad inputs are no longer invisible.
 */
struct IngestStats
{
    u64 ambiguousBases = 0; ///< non-ACGT input characters encoded as A
};

/**
 * Read a FASTA stream into a Reference. When @p stats is non-null the
 * ambiguous-base count is accumulated there; a stream with any
 * ambiguous bases triggers one warning log per call.
 */
Reference readFasta(std::istream &is, IngestStats *stats = nullptr);

/** Write reads as FASTQ (constant quality, as simulated reads carry none). */
void writeFastq(std::ostream &os, const std::vector<Read> &reads,
                char quality = 'I');

/** Read a FASTQ stream. */
std::vector<Read> readFastq(std::istream &is);

/** Outcome of one FastqReader::tryNext() step. */
enum class FastqParse
{
    kRecord, ///< a record was parsed into the output
    kEof,    ///< clean end of stream, no record produced
    kError,  ///< malformed input (truncation, bad header); see message
};

/**
 * Incremental FASTQ reader for streaming pipelines: yields one record
 * at a time so arbitrarily large read sets map in bounded memory
 * (genpair::StreamingMapper drives a pair of these).
 *
 * Two error disciplines share one parser: the CLI drivers call next(),
 * which exits the process on malformed input (a batch job cannot do
 * anything useful with half a record), while gpx_serve calls
 * tryNext(), which reports the malformation to the caller so one bad
 * request can be rejected with an error frame instead of killing a
 * daemon that other clients are connected to.
 */
class FastqReader
{
  public:
    /**
     * Read from @p is. Gzip input (magic 0x1f 0x8b) is inflated
     * transparently; in a binary built without zlib it fails with a
     * "rebuild with zlib" diagnostic through the usual error paths.
     *
     * @p record_base offsets the record indices in diagnostics: a
     * reader parsing a slice that starts at global record N passes N
     * so its "record ..." messages match the whole-stream numbering.
     * @p warned_ambiguous, when non-null, is a warn-once flag shared
     * across the readers of one logical stream (parallel slice
     * parsers warn once per run, not once per slice).
     */
    explicit FastqReader(std::istream &is, u64 record_base = 0,
                         std::atomic<bool> *warned_ambiguous = nullptr);

    /**
     * Read from an already-decompressed ByteSource (slice parsing —
     * no gzip sniffing: a mid-stream slice is always plain text).
     */
    explicit FastqReader(util::ByteSource &source, u64 record_base = 0,
                         std::atomic<bool> *warned_ambiguous = nullptr);

    /** Parse the next record into @p read; false at end of stream.
     *  Fatal (process exit) on malformed input — CLI discipline. */
    bool next(Read &read);

    /**
     * Recoverable form of next(): parses the next record into @p read
     * and reports malformed input as kError (with a diagnostic in
     * @p error when non-null) instead of exiting. After kError the
     * reader is poisoned: every further call returns kError (the
     * stream position inside a broken record is meaningless).
     */
    FastqParse tryNext(Read &read, std::string *error = nullptr);

    /** Records yielded so far (by this reader; excludes record_base). */
    u64 recordsRead() const { return records_; }

    /** Non-ACGT bases (encoded as A) seen so far; warns once per reader. */
    u64 ambiguousBases() const { return stats_.ambiguousBases; }

    /** Full ingestion statistics. */
    const IngestStats &stats() const { return stats_; }

  private:
    bool claimAmbiguousWarn();

    // Owned only by the istream constructor; declaration order is the
    // construction order the stack needs (raw below inflate).
    std::unique_ptr<util::IstreamSource> ownedRaw_;
    std::unique_ptr<util::AutoInflateSource> ownedInflate_;
    util::LineReader lines_;
    u64 recordBase_;
    u64 records_ = 0;
    IngestStats stats_;
    std::atomic<bool> *sharedWarn_;
    bool warnedAmbiguous_ = false;
    bool poisoned_ = false;
    std::string lastError_;
};

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_FASTA_HH
