/**
 * @file
 * Minimal FASTA/FASTQ serialization. The repository generates its own
 * datasets, but examples demonstrate interoperability with the standard
 * formats a downstream user would bring.
 */

#ifndef GPX_GENOMICS_FASTA_HH
#define GPX_GENOMICS_FASTA_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "genomics/readpair.hh"
#include "genomics/reference.hh"

namespace gpx {
namespace genomics {

/** Write a reference genome as multi-record FASTA. */
void writeFasta(std::ostream &os, const Reference &ref,
                std::size_t line_width = 70);

/** Read a FASTA stream into a Reference. */
Reference readFasta(std::istream &is);

/** Write reads as FASTQ (constant quality, as simulated reads carry none). */
void writeFastq(std::ostream &os, const std::vector<Read> &reads,
                char quality = 'I');

/** Read a FASTQ stream. */
std::vector<Read> readFastq(std::istream &is);

/**
 * Incremental FASTQ reader for streaming pipelines: yields one record
 * at a time so arbitrarily large read sets map in bounded memory
 * (genpair::StreamingMapper drives a pair of these).
 */
class FastqReader
{
  public:
    explicit FastqReader(std::istream &is) : is_(is) {}

    /** Parse the next record into @p read; false at end of stream. */
    bool next(Read &read);

    /** Records yielded so far. */
    u64 recordsRead() const { return records_; }

  private:
    std::istream &is_;
    u64 records_ = 0;
};

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_FASTA_HH
