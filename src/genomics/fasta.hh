/**
 * @file
 * Minimal FASTA/FASTQ serialization. The repository generates its own
 * datasets, but examples demonstrate interoperability with the standard
 * formats a downstream user would bring.
 */

#ifndef GPX_GENOMICS_FASTA_HH
#define GPX_GENOMICS_FASTA_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "genomics/readpair.hh"
#include "genomics/reference.hh"

namespace gpx {
namespace genomics {

/** Write a reference genome as multi-record FASTA. */
void writeFasta(std::ostream &os, const Reference &ref,
                std::size_t line_width = 70);

/**
 * Ingestion statistics: every reader counts the non-ACGT characters
 * (N and other IUPAC ambiguity codes, or plain corruption) it silently
 * encoded as A, so bad inputs are no longer invisible.
 */
struct IngestStats
{
    u64 ambiguousBases = 0; ///< non-ACGT input characters encoded as A
};

/**
 * Read a FASTA stream into a Reference. When @p stats is non-null the
 * ambiguous-base count is accumulated there; a stream with any
 * ambiguous bases triggers one warning log per call.
 */
Reference readFasta(std::istream &is, IngestStats *stats = nullptr);

/** Write reads as FASTQ (constant quality, as simulated reads carry none). */
void writeFastq(std::ostream &os, const std::vector<Read> &reads,
                char quality = 'I');

/** Read a FASTQ stream. */
std::vector<Read> readFastq(std::istream &is);

/** Outcome of one FastqReader::tryNext() step. */
enum class FastqParse
{
    kRecord, ///< a record was parsed into the output
    kEof,    ///< clean end of stream, no record produced
    kError,  ///< malformed input (truncation, bad header); see message
};

/**
 * Incremental FASTQ reader for streaming pipelines: yields one record
 * at a time so arbitrarily large read sets map in bounded memory
 * (genpair::StreamingMapper drives a pair of these).
 *
 * Two error disciplines share one parser: the CLI drivers call next(),
 * which exits the process on malformed input (a batch job cannot do
 * anything useful with half a record), while gpx_serve calls
 * tryNext(), which reports the malformation to the caller so one bad
 * request can be rejected with an error frame instead of killing a
 * daemon that other clients are connected to.
 */
class FastqReader
{
  public:
    explicit FastqReader(std::istream &is) : is_(is) {}

    /** Parse the next record into @p read; false at end of stream.
     *  Fatal (process exit) on malformed input — CLI discipline. */
    bool next(Read &read);

    /**
     * Recoverable form of next(): parses the next record into @p read
     * and reports malformed input as kError (with a diagnostic in
     * @p error when non-null) instead of exiting. After kError the
     * reader is poisoned: every further call returns kError (the
     * stream position inside a broken record is meaningless).
     */
    FastqParse tryNext(Read &read, std::string *error = nullptr);

    /** Records yielded so far. */
    u64 recordsRead() const { return records_; }

    /** Non-ACGT bases (encoded as A) seen so far; warns once per reader. */
    u64 ambiguousBases() const { return stats_.ambiguousBases; }

    /** Full ingestion statistics. */
    const IngestStats &stats() const { return stats_; }

  private:
    std::istream &is_;
    u64 records_ = 0;
    IngestStats stats_;
    bool warnedAmbiguous_ = false;
    bool poisoned_ = false;
    std::string lastError_;
};

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_FASTA_HH
