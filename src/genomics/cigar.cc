#include "genomics/cigar.hh"

#include <cctype>

#include "util/logging.hh"

namespace gpx {
namespace genomics {

char
cigarOpChar(CigarOp op)
{
    switch (op) {
      case CigarOp::Match: return 'M';
      case CigarOp::Insertion: return 'I';
      case CigarOp::Deletion: return 'D';
      case CigarOp::SoftClip: return 'S';
      case CigarOp::Equal: return '=';
      case CigarOp::Diff: return 'X';
    }
    return '?';
}

namespace {

CigarOp
opFromChar(char c)
{
    switch (c) {
      case 'M': return CigarOp::Match;
      case 'I': return CigarOp::Insertion;
      case 'D': return CigarOp::Deletion;
      case 'S': return CigarOp::SoftClip;
      case '=': return CigarOp::Equal;
      case 'X': return CigarOp::Diff;
      default: gpx_panic("bad CIGAR op '", c, "'");
    }
}

} // namespace

Cigar
Cigar::parse(const std::string &text)
{
    Cigar out;
    u64 len = 0;
    for (char c : text) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            len = len * 10 + static_cast<u64>(c - '0');
        } else {
            gpx_assert(len > 0 && len <= ~u32{0}, "bad CIGAR length");
            out.push(opFromChar(c), static_cast<u32>(len));
            len = 0;
        }
    }
    gpx_assert(len == 0, "trailing CIGAR length without op");
    return out;
}

void
Cigar::push(CigarOp op, u32 len)
{
    if (len == 0)
        return;
    if (!elems_.empty() && elems_.back().op == op)
        elems_.back().len += len;
    else
        elems_.push_back({ op, len });
}

u64
Cigar::querySpan() const
{
    u64 n = 0;
    for (const auto &e : elems_) {
        switch (e.op) {
          case CigarOp::Match:
          case CigarOp::Insertion:
          case CigarOp::SoftClip:
          case CigarOp::Equal:
          case CigarOp::Diff:
            n += e.len;
            break;
          case CigarOp::Deletion:
            break;
        }
    }
    return n;
}

u64
Cigar::refSpan() const
{
    u64 n = 0;
    for (const auto &e : elems_) {
        switch (e.op) {
          case CigarOp::Match:
          case CigarOp::Deletion:
          case CigarOp::Equal:
          case CigarOp::Diff:
            n += e.len;
            break;
          case CigarOp::Insertion:
          case CigarOp::SoftClip:
            break;
        }
    }
    return n;
}

u64
Cigar::insertedBases() const
{
    u64 n = 0;
    for (const auto &e : elems_) {
        if (e.op == CigarOp::Insertion)
            n += e.len;
    }
    return n;
}

u64
Cigar::deletedBases() const
{
    u64 n = 0;
    for (const auto &e : elems_) {
        if (e.op == CigarOp::Deletion)
            n += e.len;
    }
    return n;
}

std::string
Cigar::toString() const
{
    std::string s;
    for (const auto &e : elems_) {
        s += std::to_string(e.len);
        s.push_back(cigarOpChar(e.op));
    }
    return s;
}

} // namespace genomics
} // namespace gpx
