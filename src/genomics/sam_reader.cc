#include "genomics/sam_reader.hh"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <sstream>

namespace gpx {
namespace genomics {

namespace {

/** Split a tab-separated line. */
std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        std::size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

bool
parseU64(const std::string &s, u64 &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

bool
parseI64(const std::string &s, i64 &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoll(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

/** Pre-validate CIGAR text so Cigar::parse never sees garbage. */
bool
validCigarText(const std::string &text)
{
    if (text.empty())
        return false;
    bool pendingLen = false;
    for (char c : text) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            pendingLen = true;
            continue;
        }
        static const std::string ops = "MIDNSHP=X";
        if (!pendingLen || ops.find(c) == std::string::npos)
            return false;
        pendingLen = false;
    }
    return !pendingLen;
}

/** Parse one alignment line; false = malformed. */
bool
parseRecord(const std::string &line, SamRecord &rec)
{
    auto fields = splitTabs(line);
    if (fields.size() < 11)
        return false;

    rec.qname = fields[0];
    u64 flags = 0, pos = 0, pnext = 0, mapq = 0;
    if (!parseU64(fields[1], flags) || !parseU64(fields[3], pos) ||
        !parseU64(fields[4], mapq) || mapq > 255 ||
        !parseU64(fields[7], pnext) || !parseI64(fields[8], rec.tlen))
        return false;
    rec.flags = static_cast<u32>(flags);
    rec.rname = fields[2];
    rec.pos1 = pos;
    rec.mapq = static_cast<u8>(mapq);
    if (fields[5] != "*") {
        if (!validCigarText(fields[5]))
            return false;
        rec.cigar = Cigar::parse(fields[5]);
    }
    rec.rnext = fields[6];
    rec.pnext1 = pnext;
    rec.seq = fields[9] == "*" ? std::string{} : fields[9];

    // Optional tags: only AS:i is interpreted.
    for (std::size_t i = 11; i < fields.size(); ++i) {
        const std::string &tag = fields[i];
        if (tag.rfind("AS:i:", 0) == 0) {
            i64 score = 0;
            if (!parseI64(tag.substr(5), score))
                return false;
            rec.alignScore = static_cast<i32>(score);
        }
    }

    // Consistency: a mapped record needs a target name and position.
    if (rec.isMapped() && (rec.rname == "*" || rec.pos1 == 0))
        return false;
    return true;
}

} // namespace

SamFile
readSam(std::istream &is)
{
    SamFile file;
    std::string line;
    u64 lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (line[0] == '@') {
            file.headerLines.push_back(line);
            continue;
        }
        SamRecord rec;
        if (parseRecord(line, rec))
            file.records.push_back(std::move(rec));
        else
            file.badLines.emplace_back(lineNo, line);
    }
    return file;
}

std::optional<GlobalPos>
recordGlobalPos(const SamRecord &record, const Reference &ref)
{
    if (!record.isMapped() || record.pos1 == 0)
        return std::nullopt;
    for (u32 c = 0; c < ref.numChromosomes(); ++c) {
        if (ref.name(c) == record.rname) {
            const u64 offset = record.pos1 - 1;
            if (offset >= ref.chromosomeLength(c))
                return std::nullopt;
            return ref.toGlobal(c, offset);
        }
    }
    return std::nullopt;
}

} // namespace genomics
} // namespace gpx
