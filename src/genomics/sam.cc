#include "genomics/sam.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/fault.hh"
#include "util/logging.hh"

namespace gpx {
namespace genomics {

SamWriter::SamWriter(std::ostream &os, const Reference &ref,
                     u32 max_proper_insert)
    : os_(os), ref_(ref), maxProperInsert_(max_proper_insert)
{
}

void
SamWriter::checkWrites(std::string label, bool fatal_on_error)
{
    outputLabel_ = std::move(label);
    checkWrites_ = true;
    fatalOnError_ = fatal_on_error;
}

void
SamWriter::commit(const std::string &rendered)
{
    if (writeFailed_)
        return; // latched: drop output, the caller already has the error
    if (util::checkFaultBytes("sam.write", rendered.size())) {
        // Simulated ENOSPC/short write: poison the stream the way a
        // real full filesystem would, so the check below and any later
        // flush see the same failed state.
        os_.setstate(std::ios::failbit);
    } else {
        os_.write(rendered.data(),
                  static_cast<std::streamsize>(rendered.size()));
    }
    if (checkWrites_ && !os_) {
        writeFailed_ = true;
        writeError_ = util::detail::cat(
            "SAM write failed at byte offset ", bytesWritten_, " of ",
            outputLabel_.empty() ? "<output>" : outputLabel_,
            " (short write or disk full)");
        if (fatalOnError_)
            gpx_fatal(writeError_);
        return;
    }
    if (os_)
        bytesWritten_ += rendered.size();
}

void
SamWriter::writeHeader()
{
    std::ostringstream buf;
    buf << "@HD\tVN:1.6\tSO:unknown\n";
    for (u32 c = 0; c < ref_.numChromosomes(); ++c) {
        buf << "@SQ\tSN:" << ref_.name(c)
            << "\tLN:" << ref_.chromosomeLength(c) << '\n';
    }
    buf << "@PG\tID:genpairx\tPN:genpairx\tVN:1.0\n";
    commit(buf.str());
}

void
SamWriter::writeRecord(std::ostream &os, const Read &read,
                       const Mapping &mapping, u32 flags,
                       const Mapping *mate, i64 tlen)
{
    std::string rname = "*";
    u64 pos1 = 0;
    std::string cigar = "*";
    if (mapping.mapped) {
        ChromPos cp = ref_.toChromPos(mapping.pos);
        rname = ref_.name(cp.chrom);
        pos1 = cp.offset + 1; // SAM is 1-based
        cigar = mapping.cigar.empty() ? "*" : mapping.cigar.toString();
        if (mapping.reverse)
            flags |= kSamReverse;
    } else {
        flags |= kSamUnmapped;
    }

    std::string rnext = "*";
    u64 pnext = 0;
    if (mate) {
        if (mate->mapped) {
            ChromPos mcp = ref_.toChromPos(mate->pos);
            rnext = ref_.name(mcp.chrom) == rname ? "="
                                                  : ref_.name(mcp.chrom);
            pnext = mcp.offset + 1;
            if (mate->reverse)
                flags |= kSamMateReverse;
        } else {
            flags |= kSamMateUnmapped;
        }
    }

    // Sequence is stored in original orientation; SAM wants the
    // reference-forward orientation for reverse-mapped reads.
    std::string seq = mapping.mapped && mapping.reverse
                          ? read.seq.revComp().toString()
                          : read.seq.toString();
    u8 mapq = mapping.mapped ? 60 : 0;

    os << read.name << '\t' << flags << '\t' << rname << '\t' << pos1
       << '\t' << static_cast<u32>(mapq) << '\t' << cigar << '\t'
       << rnext << '\t' << pnext << '\t' << tlen << '\t' << seq << '\t'
       << '*' << "\tAS:i:" << mapping.score << '\n';
    ++records_;
}

void
SamWriter::writePairTo(std::ostream &os, const ReadPair &pair,
                       const PairMapping &mapping)
{
    u32 f1 = kSamPaired | kSamFirstInPair;
    u32 f2 = kSamPaired | kSamSecondInPair;

    i64 tlen = 0;
    bool proper = false;
    if (mapping.bothMapped() &&
        mapping.first.reverse != mapping.second.reverse) {
        const Mapping &left = mapping.first.reverse ? mapping.second
                                                    : mapping.first;
        const Mapping &right = mapping.first.reverse ? mapping.first
                                                     : mapping.second;
        if (right.pos >= left.pos) {
            u64 span = right.pos + right.cigar.refSpan() - left.pos;
            if (span <= maxProperInsert_) {
                proper = true;
                tlen = static_cast<i64>(span);
            }
        }
    }
    if (proper) {
        f1 |= kSamProperPair;
        f2 |= kSamProperPair;
    }
    i64 tlen1 = mapping.first.reverse ? -tlen : tlen;
    i64 tlen2 = mapping.second.reverse ? -tlen : tlen;

    writeRecord(os, pair.first, mapping.first, f1, &mapping.second,
                tlen1);
    writeRecord(os, pair.second, mapping.second, f2, &mapping.first,
                tlen2);
}

void
SamWriter::writePair(const ReadPair &pair, const PairMapping &mapping)
{
    std::ostringstream buf;
    writePairTo(buf, pair, mapping);
    commit(buf.str());
}

void
SamWriter::writePairBatch(const ReadPair *pairs,
                          const PairMapping *mappings, std::size_t n)
{
    std::ostringstream buf;
    for (std::size_t i = 0; i < n; ++i)
        writePairTo(buf, pairs[i], mappings[i]);
    commit(buf.str());
}

void
SamWriter::writeRead(const Read &read, const Mapping &mapping)
{
    std::ostringstream buf;
    writeRecord(buf, read, mapping, 0, nullptr, 0);
    commit(buf.str());
}

u8
mapqFromScores(i32 best, i32 second_best, i32 perfect)
{
    if (best <= 0 || perfect <= 0)
        return 0;
    if (second_best <= 0)
        return 60;
    double gap = static_cast<double>(best - second_best) / perfect;
    double q = 60.0 * std::min(1.0, gap * 4.0);
    return static_cast<u8>(std::max(0.0, q));
}

} // namespace genomics
} // namespace gpx
