#include "genomics/fastq_ingest.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpx {
namespace genomics {

u64
SliceScanner::scan(u64 max_records, std::string &text, bool &partial_tail)
{
    partial_tail = false;
    if (eof_)
        return 0;
    u64 records = 0;
    std::string line;
    std::string record; // staged so a source failure drops the tail
    while (records < max_records) {
        record.clear();
        bool haveHeader = false;
        while (lines_.getline(line)) {
            std::size_t len = line.size();
            if (len > 0 && line.back() == '\r')
                --len; // CR-stripped emptiness, same test as the parser
            record.append(line);
            record.push_back('\n');
            if (len > 0) {
                haveHeader = true;
                break;
            }
        }
        if (!haveHeader) {
            eof_ = true;
            // Trailing blank lines are part of the stream (the parser
            // skips them identically); a source failure keeps nothing.
            if (lines_.error().empty())
                text.append(record);
            return records;
        }
        bool truncated = false;
        for (int i = 0; i < 3 && !truncated; ++i) {
            if (!lines_.getline(line)) {
                truncated = true;
            } else {
                record.append(line);
                record.push_back('\n');
            }
        }
        if (truncated) {
            eof_ = true;
            if (lines_.error().empty()) {
                // Genuine EOF mid-record: ship the tail so the parse
                // worker reproduces the serial truncation diagnostic.
                text.append(record);
                partial_tail = true;
            }
            return records;
        }
        text.append(record);
        ++records;
    }
    return records;
}

PairedFastqChunker::PairedFastqChunker(util::ByteSource &r1,
                                       util::ByteSource &r2,
                                       u64 chunk_pairs)
    : scan1_(r1), scan2_(r2), chunkPairs_(chunk_pairs == 0 ? 1 : chunk_pairs)
{
}

bool
PairedFastqChunker::next(FastqChunk &chunk)
{
    if (done_)
        return false;
    chunk.seq = nextSeq_;
    chunk.recordBase = pairsScanned_;
    chunk.pairs = 0;
    chunk.r1Text.clear();
    chunk.r2Text.clear();
    chunk.scanError = IngestError{};
    bool p1 = false;
    bool p2 = false;
    while (chunk.pairs < chunkPairs_) {
        // Lockstep, one pair at a time, mirroring the serial
        // next(r1); next(r2); check-disagree iteration so every error
        // candidate lands at the exact serial firing position.
        const u64 errorIndex = pairsScanned_ + chunk.pairs + 1;
        if (scan1_.scan(1, chunk.r1Text, p1) == 0) {
            done_ = true;
            if (!scan1_.error().empty()) {
                chunk.scanError = {errorIndex, 0, scan1_.error()};
            } else if (!p1) {
                // Clean R1 EOF: probe R2 as the serial loop's next(r2)
                // call would. A complete record there is the
                // disagreement; a partial tail is an R2 truncation the
                // parse worker reproduces from the shipped tail.
                if (scan2_.scan(1, chunk.r2Text, p2) == 1) {
                    chunk.scanError = {
                        errorIndex, 2,
                        util::detail::cat(
                            "FASTQ streams disagree: R1 ended early "
                            "after ",
                            pairsScanned_ + chunk.pairs,
                            " records while R2 still has reads (",
                            errorIndex, " so far)")};
                } else if (!scan2_.error().empty()) {
                    chunk.scanError = {errorIndex, 1, scan2_.error()};
                }
            }
            // p1: the R1 tail is in r1Text; the parse worker produces
            // the serial truncation diagnostic at errorIndex, rank 0.
            break;
        }
        if (scan2_.scan(1, chunk.r2Text, p2) == 0) {
            done_ = true;
            if (!scan2_.error().empty()) {
                chunk.scanError = {errorIndex, 1, scan2_.error()};
            } else if (!p2) {
                chunk.scanError = {
                    errorIndex, 2,
                    util::detail::cat(
                        "FASTQ streams disagree: R2 ended early after ",
                        pairsScanned_ + chunk.pairs,
                        " records while R1 still has reads (", errorIndex,
                        " so far)")};
            }
            break;
        }
        ++chunk.pairs;
    }
    pairsScanned_ += chunk.pairs;
    ++nextSeq_;
    if (chunk.pairs == 0 && !chunk.scanError.set() &&
        chunk.r1Text.empty() && chunk.r2Text.empty())
        return false; // nothing at all: suppress the empty terminal chunk
    return true;
}

ParsedChunk
parseFastqChunk(FastqChunk &&chunk, std::atomic<bool> *warned_ambiguous)
{
    ParsedChunk out;
    out.seq = chunk.seq;
    out.recordBase = chunk.recordBase;
    util::StringSource s1(std::move(chunk.r1Text));
    util::StringSource s2(std::move(chunk.r2Text));
    FastqReader r1(s1, chunk.recordBase, warned_ambiguous);
    FastqReader r2(s2, chunk.recordBase, warned_ambiguous);

    auto parseAll = [&](FastqReader &reader, std::vector<Read> &reads,
                        int rank) {
        IngestError candidate;
        Read rec;
        std::string err;
        for (;;) {
            switch (reader.tryNext(rec, &err)) {
            case FastqParse::kRecord:
                reads.push_back(std::move(rec));
                continue;
            case FastqParse::kError:
                candidate = {chunk.recordBase + reader.recordsRead() + 1,
                             rank, std::move(err)};
                break;
            case FastqParse::kEof:
                break;
            }
            return candidate;
        }
    };

    std::vector<Read> reads1;
    std::vector<Read> reads2;
    reads1.reserve(chunk.pairs);
    reads2.reserve(chunk.pairs);
    IngestError e1 = parseAll(r1, reads1, 0);
    IngestError e2 = parseAll(r2, reads2, 1);
    out.r1Stats = r1.stats();
    out.r2Stats = r2.stats();

    out.error = e1;
    if (e2.before(out.error))
        out.error = e2;
    if (chunk.scanError.before(out.error))
        out.error = chunk.scanError;

    const std::size_t n =
        std::min({reads1.size(), reads2.size(),
                  static_cast<std::size_t>(chunk.pairs)});
    out.pairs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ReadPair pair;
        pair.first = std::move(reads1[i]);
        pair.second = std::move(reads2[i]);
        out.pairs.push_back(std::move(pair));
    }
    return out;
}

} // namespace genomics
} // namespace gpx
