/**
 * @file
 * Parallel chunked FASTQ ingest: the record-boundary scanner and the
 * paired-stream chunker feeding the streaming spine.
 *
 * The historical pipeline parsed both FASTQ streams on one thread —
 * record boundary detection, name extraction and 2-bit DNA encoding
 * all serialized. This layer splits ingest in two:
 *
 *   SliceScanner      — cheap: finds record boundaries with memchr
 *                       and slices raw text, no per-base work
 *   PairedFastqChunker— one per run: scans R1/R2 in lockstep into
 *                       sequence-numbered FastqChunk raw-text slices
 *   parseFastqChunk   — expensive: full FastqReader parse of a slice
 *                       (encoding, validation), safe to run on N
 *                       threads over disjoint chunks concurrently
 *
 * Error contract: the combination reproduces the serial reader's
 * diagnostics exactly. Every failure candidate — R1 parse error, R2
 * parse error, stream-length disagreement, byte-source failure — is
 * tagged with (absolute record index, stream rank) and the minimum
 * wins, which is precisely the order the serial interleaved
 * next(r1)/next(r2) loop would have hit them in. Truncated tails are
 * included in the slice text so the parse worker reproduces the
 * serial truncation message verbatim; the chunker itself never
 * validates record contents.
 */

#ifndef GPX_GENOMICS_FASTQ_INGEST_HH
#define GPX_GENOMICS_FASTQ_INGEST_HH

#include <atomic>
#include <string>
#include <vector>

#include "genomics/fasta.hh"
#include "genomics/readpair.hh"
#include "util/byte_stream.hh"

namespace gpx {
namespace genomics {

/**
 * One ingest-failure candidate, ordered the way the serial reader
 * would have hit it: by absolute record index first, then by rank
 * within the pair iteration (R1 parse = 0, R2 parse = 1, stream
 * disagreement = 2, matching the serial next(r1); next(r2);
 * check-disagree sequence).
 */
struct IngestError
{
    u64 recordIndex = 0;
    int rank = 0;
    std::string message;

    bool set() const { return !message.empty(); }

    /** True when this candidate fires before @p other serially. */
    bool
    before(const IngestError &other) const
    {
        if (!set())
            return false;
        if (!other.set())
            return true;
        if (recordIndex != other.recordIndex)
            return recordIndex < other.recordIndex;
        return rank < other.rank;
    }
};

/** Raw-text slice of both streams: the unit of parallel parsing. */
struct FastqChunk
{
    u64 seq = 0;        ///< chunk sequence number (reorder key)
    u64 recordBase = 0; ///< complete pairs before this chunk
    u64 pairs = 0;      ///< complete pairs scanned into the texts
    std::string r1Text; ///< raw slice (may hold pairs+1 records, or a
                        ///< truncated tail, around a stream error)
    std::string r2Text;
    IngestError scanError; ///< chunker-detected candidate (disagreement
                           ///< or byte-source failure); parse workers
                           ///< may still find an earlier one
};

/** Parse output of one chunk, ready for the mapper. */
struct ParsedChunk
{
    u64 seq = 0;
    u64 recordBase = 0;
    std::vector<ReadPair> pairs;
    IngestError error; ///< winning candidate for this chunk (if any)
    IngestStats r1Stats;
    IngestStats r2Stats;
};

/**
 * Record-boundary scanner over one decompressed FASTQ byte stream.
 * Mirrors the parser's line discipline exactly — blank lines (after
 * CR strip) are skipped only at the header position, a final line
 * without '\n' still counts — but validates nothing: slices are
 * parsed (and diagnosed) downstream.
 */
class SliceScanner
{
  public:
    explicit SliceScanner(util::ByteSource &source) : lines_(source) {}

    /**
     * Append up to @p max_records complete records (raw text,
     * newline-terminated lines) to @p text. Returns the number of
     * complete records appended. A record cut off by EOF is still
     * appended — with @p partial_tail set — so the parser reproduces
     * the serial truncation diagnostic.
     */
    u64 scan(u64 max_records, std::string &text, bool &partial_tail);

    /** Byte-source failure (corrupt gzip, missing zlib); scan stops. */
    const std::string &error() const { return lines_.error(); }

  private:
    util::LineReader lines_;
    bool eof_ = false;
};

/**
 * Lockstep scanner over a FASTQ pair of streams. next() yields
 * sequence-numbered chunks of up to chunk_pairs complete pairs;
 * stream-length disagreement and source failures surface as
 * IngestError candidates on the final chunk, with slice text
 * arranged so parse workers reproduce the serial diagnostics
 * (see file comment).
 */
class PairedFastqChunker
{
  public:
    PairedFastqChunker(util::ByteSource &r1, util::ByteSource &r2,
                       u64 chunk_pairs);

    /**
     * Scan the next chunk. False at clean matched EOF with nothing
     * scanned; a chunk carrying only an error candidate still
     * returns true. After an error chunk (or false), the chunker is
     * exhausted.
     */
    bool next(FastqChunk &chunk);

  private:
    SliceScanner scan1_;
    SliceScanner scan2_;
    const u64 chunkPairs_;
    u64 nextSeq_ = 0;
    u64 pairsScanned_ = 0;
    bool done_ = false;
};

/**
 * Fully parse one chunk's raw text (the expensive half of ingest; runs
 * concurrently across chunks). @p warned_ambiguous is the run-wide
 * warn-once flag shared by every slice parser.
 */
ParsedChunk parseFastqChunk(FastqChunk &&chunk,
                            std::atomic<bool> *warned_ambiguous);

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_FASTQ_INGEST_HH
