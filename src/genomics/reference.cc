#include "genomics/reference.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gpx {
namespace genomics {

u32
Reference::addChromosome(std::string name, DnaSequence seq)
{
    u32 id = static_cast<u32>(chroms_.size());
    starts_.push_back(total_);
    total_ += seq.size();
    names_.push_back(std::move(name));
    chroms_.push_back(std::move(seq));
    return id;
}

ChromPos
Reference::toChromPos(GlobalPos pos) const
{
    gpx_assert(pos < total_, "global position out of range");
    auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
    u32 chrom = static_cast<u32>(it - starts_.begin()) - 1;
    return { chrom, pos - starts_[chrom] };
}

GlobalPos
Reference::toGlobal(u32 chrom, u64 offset) const
{
    gpx_assert(chrom < chroms_.size(), "chromosome out of range");
    gpx_assert(offset < chroms_[chrom].size(), "offset out of range");
    return starts_[chrom] + offset;
}

u8
Reference::baseAt(GlobalPos pos) const
{
    ChromPos cp = toChromPos(pos);
    return chroms_[cp.chrom].at(cp.offset);
}

DnaSequence
Reference::window(GlobalPos pos, u64 len) const
{
    return windowView(pos, len).materialize();
}

DnaView
Reference::windowView(GlobalPos pos, u64 len) const
{
    if (pos >= total_)
        return {};
    ChromPos cp = toChromPos(pos);
    const DnaSequence &chrom = chroms_[cp.chrom];
    u64 avail = chrom.size() - cp.offset;
    return chrom.view(cp.offset, std::min(len, avail));
}

bool
Reference::windowValid(GlobalPos pos, u64 len) const
{
    if (pos >= total_ || len == 0)
        return false;
    ChromPos cp = toChromPos(pos);
    return cp.offset + len <= chroms_[cp.chrom].size();
}

} // namespace genomics
} // namespace gpx
