/**
 * @file
 * Multi-chromosome reference genome with a flat global coordinate space.
 *
 * The SeedMap Location Table stores (chromosome, offset) pairs (paper
 * Fig. 4); this class provides the bijection between that representation
 * and the flat GlobalPos used by the adjacency filter's distance check.
 */

#ifndef GPX_GENOMICS_REFERENCE_HH
#define GPX_GENOMICS_REFERENCE_HH

#include <string>
#include <vector>

#include "genomics/sequence.hh"
#include "util/types.hh"

namespace gpx {
namespace genomics {

/** A (chromosome id, offset within chromosome) location. */
struct ChromPos
{
    u32 chrom = 0;
    u64 offset = 0;

    bool
    operator==(const ChromPos &other) const
    {
        return chrom == other.chrom && offset == other.offset;
    }
};

/** Reference genome: named chromosomes over a global coordinate space. */
class Reference
{
  public:
    /** Append a chromosome; returns its id. */
    u32 addChromosome(std::string name, DnaSequence seq);

    u32 numChromosomes() const { return static_cast<u32>(chroms_.size()); }

    const std::string &name(u32 chrom) const { return names_.at(chrom); }
    const DnaSequence &chromosome(u32 chrom) const { return chroms_.at(chrom); }
    u64 chromosomeLength(u32 chrom) const { return chroms_.at(chrom).size(); }

    /** Total number of bases across all chromosomes. */
    u64 totalLength() const { return total_; }

    /** Convert a global position to (chromosome, offset). */
    ChromPos toChromPos(GlobalPos pos) const;

    /** Convert (chromosome, offset) to a global position. */
    GlobalPos toGlobal(u32 chrom, u64 offset) const;

    /** Global position of a chromosome's first base. */
    GlobalPos chromosomeStart(u32 chrom) const { return starts_.at(chrom); }

    /** Base code at a global position. */
    u8 baseAt(GlobalPos pos) const;

    /**
     * Fetch the window [pos, pos+len) as a DnaSequence, clamped to the
     * containing chromosome (never crosses a chromosome boundary; short
     * windows at chromosome ends are truncated).
     */
    DnaSequence window(GlobalPos pos, u64 len) const;

    /**
     * Zero-copy variant of window(): a view aliasing the chromosome's
     * packed storage, clamped identically. Valid for the lifetime of
     * this Reference; this is what the candidate-inspection hot paths
     * (filters, light alignment, DP fallback) consume.
     */
    DnaView windowView(GlobalPos pos, u64 len) const;

    /**
     * True iff [pos, pos+len) lies fully within one chromosome; seeds and
     * alignment windows that would straddle a boundary are invalid.
     */
    bool windowValid(GlobalPos pos, u64 len) const;

  private:
    std::vector<std::string> names_;
    std::vector<DnaSequence> chroms_;
    std::vector<GlobalPos> starts_;
    u64 total_ = 0;
};

} // namespace genomics
} // namespace gpx

#endif // GPX_GENOMICS_REFERENCE_HH
