/**
 * @file
 * Hardware design-space explorer: wire a software profiling run into the
 * GenPairX hardware models and explore window sizes and memory
 * technologies, printing throughput, area and power for each design
 * point — the workflow an architect would use to retarget GenPairX.
 *
 * Run: ./build/examples/hw_design_explorer
 */

#include <cstdio>

#include "baseline/mm2lite.hh"
#include "genpair/pipeline.hh"
#include "hwsim/nmsl.hh"
#include "hwsim/pipeline_model.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpx;

    // Software profiling run (the paper's §7.2 methodology).
    simdata::GenomeParams gp;
    gp.length = 2 << 20;
    gp.chromosomes = 2;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome donor(ref, simdata::VariantParams{});
    simdata::ReadSimulator sim(donor, simdata::ReadSimParams{});
    auto pairs = sim.simulate(5000);

    genpair::SeedMap seedmap(ref, genpair::SeedMapParams{});
    baseline::Mm2Lite mm2(ref, baseline::Mm2LiteParams{});
    genpair::GenPairPipeline pipeline(ref, seedmap,
                                      genpair::GenPairParams{}, &mm2);
    for (const auto &pair : pairs)
        pipeline.mapPair(pair);
    auto profile = hwsim::WorkloadProfile::fromStats(
        pipeline.stats(), 150, 15000, 75000,
        seedmap.stats().avgLocationsPerSeed);
    std::printf("profiled workload: %.1f filter iters/pair, %.1f light "
                "aligns/pair, %.1f%% DP-align fraction\n\n",
                profile.avgFilterIterationsPerPair,
                profile.avgLightAlignsPerPair,
                100 * profile.dpAlignFrac());

    auto workload = hwsim::buildWorkload(seedmap, pairs);
    hwsim::PipelineModel pm(2.0);

    util::Table table({ "memory", "window", "MPair/s", "Mbp/s",
                        "area (mm2)", "power (W)", "Mbp/s/W" });
    for (const auto &mem :
         { hwsim::MemoryConfig::ddr5(), hwsim::MemoryConfig::gddr6(),
           hwsim::MemoryConfig::hbm2() }) {
        for (u32 window : { 64u, 1024u }) {
            hwsim::NmslConfig cfg;
            cfg.mem = mem;
            cfg.windowSize = window;
            auto nmsl = hwsim::NmslSim(cfg).run(workload);
            auto design = pm.design(nmsl, cfg, profile);
            double watts = design.totalCost.powerMw / 1000.0 +
                           nmsl.dramTotalPowerW;
            table.row()
                .cell(mem.name)
                .cell(static_cast<long long>(window))
                .cell(design.endToEndMpairs, 1)
                .cell(design.throughputMbps(), 0)
                .cell(design.totalCost.areaMm2, 1)
                .cell(watts, 1)
                .cell(design.throughputMbps() / watts, 1);
        }
    }
    table.print("GenPairX+GenDP design space");
    std::printf("use hwsim::PipelineModel::throughputUnder() to stress a "
                "fixed design with harder workloads (see "
                "bench/fig12_error_sweep.cc).\n");
    return 0;
}
