/**
 * @file
 * Quickstart: build a reference index, map a handful of paired-end
 * reads with the GenPair pipeline, and inspect the results. Start here.
 *
 * Run: ./build/examples/quickstart
 */

#include <cstdio>

#include "baseline/mm2lite.hh"
#include "genpair/pipeline.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"

int
main()
{
    using namespace gpx;

    // 1. A reference genome. Real users load FASTA via
    //    genomics::readFasta; here we synthesize a 1 Mbp genome.
    simdata::GenomeParams genomeParams;
    genomeParams.length = 1 << 20;
    genomeParams.chromosomes = 2;
    genomics::Reference ref = simdata::generateGenome(genomeParams);
    std::printf("reference: %u chromosomes, %llu bp\n",
                ref.numChromosomes(),
                static_cast<unsigned long long>(ref.totalLength()));

    // 2. Offline stage: build the SeedMap index (paper §4.2).
    genpair::SeedMapParams indexParams; // 50 bp seeds, filter 500
    genpair::SeedMap seedmap(ref, indexParams);
    std::printf("SeedMap: %.1f MB seed table + %.1f MB locations, "
                "%.2f locations/seed\n",
                seedmap.seedTableBytes() / 1048576.0,
                seedmap.locationTableBytes() / 1048576.0,
                seedmap.stats().avgLocationsPerSeed);

    // 3. The DP fallback engine (the GenDP role in software).
    baseline::Mm2Lite fallback(ref, baseline::Mm2LiteParams{});

    // 4. Online stage: the GenPair pipeline.
    genpair::GenPairPipeline pipeline(ref, seedmap,
                                      genpair::GenPairParams{},
                                      &fallback);

    // 5. Some paired-end reads (use genomics::readFastq for real data).
    simdata::DiploidGenome donor(ref, simdata::VariantParams{});
    simdata::ReadSimulator simulator(donor, simdata::ReadSimParams{});
    auto pairs = simulator.simulate(10);

    // 6. Map and report.
    for (const auto &pair : pairs) {
        genomics::PairMapping pm = pipeline.mapPair(pair);
        const char *path = "unmapped";
        switch (pm.path) {
          case genomics::MappingPath::LightAligned:
            path = "light-aligned";
            break;
          case genomics::MappingPath::DpAlignFallback:
            path = "DP-align fallback";
            break;
          case genomics::MappingPath::FullDpFallback:
            path = "full DP fallback";
            break;
          case genomics::MappingPath::Unmapped:
            break;
        }
        std::printf("%-10s r1 @%-9llu%s score %-4d %-14s r2 @%-9llu%s "
                    "score %-4d [%s]\n",
                    pair.first.name.c_str(),
                    static_cast<unsigned long long>(pm.first.pos),
                    pm.first.reverse ? "-" : "+", pm.first.score,
                    pm.first.cigar.toString().c_str(),
                    static_cast<unsigned long long>(pm.second.pos),
                    pm.second.reverse ? "-" : "+", pm.second.score,
                    path);
    }

    const auto &st = pipeline.stats();
    std::printf("\n%llu pairs: %.0f%% on the light fast path, "
                "%.0f%% DP fallback\n",
                static_cast<unsigned long long>(st.pairsTotal),
                100 * st.fraction(st.lightAligned),
                100 * (st.fraction(st.seedMissFallback) +
                       st.fraction(st.paFilterFallback) +
                       st.fraction(st.lightAlignFallback)));
    return 0;
}
