/**
 * @file
 * Variant-calling workflow: the paper's intro use case end to end —
 * simulate a diploid donor, sequence it, map with GenPair+DP-fallback,
 * pile up, call SNPs/INDELs, and score against the truth set.
 *
 * Run: ./build/examples/variant_calling
 */

#include <cstdio>

#include "baseline/mm2lite.hh"
#include "eval/pileup.hh"
#include "eval/variant_bench.hh"
#include "genpair/pipeline.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"
#include "util/table.hh"

int
main()
{
    using namespace gpx;

    // A 800 kb diploid donor sequenced at ~25x.
    simdata::GenomeParams gp;
    gp.length = 800000;
    gp.chromosomes = 2;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome donor(ref, simdata::VariantParams{});
    std::printf("donor carries %zu truth variants\n",
                donor.truthVariants().size());

    simdata::ReadSimulator sim(donor, simdata::ReadSimParams{});
    u64 numPairs = ref.totalLength() * 25 / 300;
    auto pairs = sim.simulate(numPairs);
    std::printf("sequenced %llu read pairs (~25x)\n",
                static_cast<unsigned long long>(numPairs));

    // Map with the full GenPair + DP-fallback stack.
    genpair::SeedMap seedmap(ref, genpair::SeedMapParams{});
    baseline::Mm2Lite fallback(ref, baseline::Mm2LiteParams{});
    genpair::GenPairPipeline pipeline(ref, seedmap,
                                      genpair::GenPairParams{},
                                      &fallback);

    eval::PileupCaller caller(ref, eval::CallerParams{});
    for (const auto &pair : pairs) {
        auto pm = pipeline.mapPair(pair);
        if (pm.first.mapped) {
            caller.addAlignment(pm.first.reverse
                                    ? pair.first.seq.revComp()
                                    : pair.first.seq,
                                pm.first);
        }
        if (pm.second.mapped) {
            caller.addAlignment(pm.second.reverse
                                    ? pair.second.seq.revComp()
                                    : pair.second.seq,
                                pm.second);
        }
    }
    std::printf("mean pileup depth: %.1fx\n", caller.meanDepth());

    auto calls = caller.call();
    std::printf("called %zu variants\n", calls.size());

    util::Table table({ "class", "TP", "FP", "FN", "precision", "recall",
                        "F1" });
    for (auto cls :
         { eval::VariantClass::Snp, eval::VariantClass::Indel }) {
        auto r = eval::benchmarkVariants(donor.truthVariants(), calls,
                                         cls);
        table.row()
            .cell(cls == eval::VariantClass::Snp ? "SNP" : "INDEL")
            .cell(static_cast<long long>(r.tp))
            .cell(static_cast<long long>(r.fp))
            .cell(static_cast<long long>(r.fn))
            .cell(r.precision(), 4)
            .cell(r.recall(), 4)
            .cell(r.f1(), 4);
    }
    table.print("variant calling vs truth set");
    return 0;
}
