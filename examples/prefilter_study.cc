/**
 * @file
 * Pre-alignment filter study: evaluate candidate mapping locations with
 * the classic filter family (BaseCount, SHD, GateKeeper, SneakySnake)
 * and run the SneakySnake x Light Alignment combination the paper's §8
 * names as promising future work.
 *
 * This demonstrates the filters/ public API on a single read pair so
 * the decisions are easy to follow; bench/ablation_filters runs the
 * same machinery over full datasets.
 *
 * Run: ./build/examples/prefilter_study
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "filters/base_count.hh"
#include "filters/edit_distance.hh"
#include "filters/filtered_light_align.hh"
#include "filters/gatekeeper.hh"
#include "filters/shd_filter.hh"
#include "filters/sneakysnake.hh"
#include "simdata/genome_generator.hh"
#include "util/rng.hh"

int
main()
{
    using namespace gpx;
    using genomics::DnaSequence;

    // A reference and a read sampled from it with one edit event: a
    // two-base deletion (a Table 1 case, so the fast path can align it).
    simdata::GenomeParams gp;
    gp.length = 1 << 20;
    gp.seed = 99;
    genomics::Reference ref = simdata::generateGenome(gp);

    const GlobalPos origin = 123456;
    DnaSequence truth = ref.window(origin, 152);
    DnaSequence read;
    for (std::size_t i = 0; i < truth.size(); ++i)
        if (i < 80 || i >= 82) // drop bases 80-81: a 2-base deletion
            read.push(truth.at(i));
    std::printf("read: 150 bp sampled at %llu with a 2-base deletion\n\n",
                static_cast<unsigned long long>(origin));

    // Evaluate the true location and a decoy with every filter.
    const u32 budget = 5;
    struct Candidate
    {
        const char *label;
        GlobalPos pos;
    };
    const Candidate candidates[] = { { "true origin", origin },
                                     { "decoy (+50 kbp)", origin + 50000 } };

    std::vector<std::unique_ptr<filters::PreAlignmentFilter>> bank;
    bank.push_back(std::make_unique<filters::BaseCountFilter>());
    bank.push_back(std::make_unique<filters::ShdFilter>());
    bank.push_back(std::make_unique<filters::GateKeeperFilter>());
    bank.push_back(std::make_unique<filters::SneakySnakeFilter>());

    for (const auto &cand : candidates) {
        const GlobalPos from = cand.pos - budget;
        DnaSequence window =
            ref.window(from, read.size() + 2 * static_cast<u64>(budget));
        u32 oracle =
            filters::candidateEditDistance(read, window, budget, budget);
        std::printf("candidate %-16s true edit distance %u\n", cand.label,
                    oracle);
        for (const auto &f : bank) {
            auto d = f->evaluate(read, window, budget, budget);
            std::printf("  %-12s estimate %2u -> %s\n", f->name().c_str(),
                        d.estimatedEdits,
                        d.accept ? "accept" : "reject");
        }
    }

    // The §8 combination: SneakySnake gates the Light Aligner. The true
    // origin passes the gate and light-aligns (score + CIGAR, no DP);
    // the decoy dies at the gate without costing a single hypothesis.
    filters::SneakySnakeFilter gate;
    genpair::LightAlignParams lightParams;
    filters::FilteredLightAligner combo(ref, lightParams, gate);
    for (const auto &cand : candidates) {
        auto r = combo.align(read, cand.pos);
        if (r.aligned)
            std::printf("\n%s: light-aligned at %llu, score %d, CIGAR %s",
                        cand.label,
                        static_cast<unsigned long long>(r.pos), r.score,
                        r.cigar.toString().c_str());
        else
            std::printf("\n%s: not aligned (gate or light-align reject)",
                        cand.label);
    }
    const auto &st = combo.stats();
    std::printf("\n\ncombo stats: %llu candidates, %llu gate rejects, "
                "%llu light-aligned, %llu hypotheses spent\n",
                static_cast<unsigned long long>(st.candidates),
                static_cast<unsigned long long>(st.gateRejected),
                static_cast<unsigned long long>(st.lightAligned),
                static_cast<unsigned long long>(st.hypothesesTried));
    return 0;
}
