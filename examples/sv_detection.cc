/**
 * @file
 * Structural-variant detection with paired-end discordance — the
 * downstream analysis the paper's motivation (§3) cites as a key
 * reason paired-end mapping dominates: "more accurate detection of
 * structural variants ... and repetitive regions".
 *
 * A donor genome carries a planted 400 bp deletion. Reads simulated
 * from the donor map back to the *original* reference, so pairs that
 * straddle the deletion show an implied insert ~400 bp longer than the
 * library insert. The example maps the reads with GenPairPipeline,
 * collects discordant pairs (BreakDancer-style), clusters their
 * implied breakpoints and recovers the deletion's position and size.
 *
 * Run: ./build/examples/sv_detection
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/mm2lite.hh"
#include "genpair/pipeline.hh"
#include "simdata/genome_generator.hh"
#include "util/rng.hh"

int
main()
{
    using namespace gpx;
    using genomics::DnaSequence;

    // Reference genome, and a donor that lost 400 bp at position 300k.
    simdata::GenomeParams gp;
    gp.length = 1 << 20;
    gp.chromosomes = 1;
    gp.seed = 17;
    genomics::Reference ref = simdata::generateGenome(gp);

    const GlobalPos delStart = 300000;
    const u32 delLen = 400;
    const DnaSequence &chrom = ref.chromosome(0);
    DnaSequence donor = chrom.sub(0, delStart);
    donor.append(chrom.view(delStart + delLen,
                            chrom.size() - delStart - delLen));
    std::printf("planted deletion: ref [%llu, %llu) (%u bp)\n",
                static_cast<unsigned long long>(delStart),
                static_cast<unsigned long long>(delStart + delLen),
                delLen);

    // Simulate FR pairs from the donor: fragment of ~400 bp, read 1
    // forward from the left end, read 2 reverse-complement from the
    // right end (what ReadSimulator does, done by hand here because
    // the donor is a custom haplotype).
    util::Pcg32 rng(23);
    const u32 readLen = 150;
    const double insertMean = 400.0, insertSd = 30.0;
    std::vector<genomics::ReadPair> pairs;
    for (int i = 0; i < 60000; ++i) {
        double g = std::sqrt(-2.0 * std::log(rng.uniform())) *
                   std::cos(6.28318530718 * rng.uniform());
        u32 insert = static_cast<u32>(
            std::max(2.0 * readLen, insertMean + insertSd * g));
        if (donor.size() < insert + 1)
            continue;
        GlobalPos start =
            rng.below64(donor.size() - insert);
        genomics::ReadPair p;
        p.first.name = "frag" + std::to_string(i);
        p.first.seq = donor.sub(start, readLen);
        p.second.name = p.first.name;
        p.second.seq =
            donor.sub(start + insert - readLen, readLen).revComp();
        pairs.push_back(std::move(p));
    }

    // Map against the original reference. Delta is widened so the
    // deletion-straddling pairs (insert ~800 on the reference) stay on
    // the fast path instead of falling back.
    genpair::SeedMap map(ref, genpair::SeedMapParams{});
    baseline::Mm2Lite mm2(ref, baseline::Mm2LiteParams{});
    genpair::GenPairParams params;
    params.delta = 1200;
    genpair::GenPairPipeline pipe(ref, map, params, &mm2);

    struct Discordant
    {
        GlobalPos leftEnd;   ///< rightmost base of the left read
        GlobalPos rightStart;///< leftmost base of the right read
        u64 impliedInsert;
    };
    std::vector<Discordant> discordant;
    u64 mapped = 0;
    for (const auto &p : pairs) {
        auto pm = pipe.mapPair(p);
        if (!pm.bothMapped())
            continue;
        ++mapped;
        const auto &a = pm.first.pos <= pm.second.pos ? pm.first
                                                      : pm.second;
        const auto &b = pm.first.pos <= pm.second.pos ? pm.second
                                                      : pm.first;
        u64 insert = b.pos + readLen - a.pos;
        // Discordance test: > mean + 5 sd implies a deletion between
        // the two reads.
        if (insert > insertMean + 5 * insertSd)
            discordant.push_back(
                { a.pos + readLen, b.pos, insert });
    }
    std::printf("mapped %llu/%zu pairs, %zu discordant\n",
                static_cast<unsigned long long>(mapped), pairs.size(),
                discordant.size());
    if (discordant.empty()) {
        std::printf("no discordant evidence found\n");
        return 1;
    }

    // Repeats create occasional false discordance (a read mismapped to
    // a distant repeat copy) — the same ambiguity §3 says paired-end
    // context exists to fight. Cluster the evidence by position and
    // keep the largest cluster before intersecting gaps.
    std::sort(discordant.begin(), discordant.end(),
              [](const Discordant &x, const Discordant &y) {
                  return x.leftEnd < y.leftEnd;
              });
    std::size_t bestBegin = 0, bestLen = 0;
    for (std::size_t i = 0; i < discordant.size();) {
        std::size_t j = i + 1;
        while (j < discordant.size() &&
               discordant[j].leftEnd - discordant[i].leftEnd < 1000)
            ++j;
        if (j - i > bestLen) {
            bestLen = j - i;
            bestBegin = i;
        }
        ++i;
    }
    std::printf("largest breakpoint cluster: %zu of %zu pairs\n",
                bestLen, discordant.size());

    // The breakpoint lies inside every clustered pair's gap: intersect
    // the gaps and average the implied size.
    GlobalPos lo = 0, hi = ~GlobalPos{0};
    double sizeSum = 0;
    for (std::size_t i = bestBegin; i < bestBegin + bestLen; ++i) {
        const auto &d = discordant[i];
        lo = std::max(lo, d.leftEnd);
        hi = std::min(hi, d.rightStart);
        sizeSum += d.impliedInsert - insertMean;
    }
    const double estSize = sizeSum / bestLen;
    std::printf("breakpoint interval: [%llu, %llu] (truth %llu)\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(delStart));
    std::printf("estimated deletion size: %.0f bp (truth %u)\n", estSize,
                delLen);

    const bool hit = lo <= delStart + delLen && delStart <= hi &&
                     std::abs(estSize - delLen) < 60;
    std::printf("%s\n", hit ? "deletion recovered" : "MISSED");
    return hit ? 0 : 1;
}
