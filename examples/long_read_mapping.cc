/**
 * @file
 * Long-read mapping (paper §4.7): PacBio-HiFi-like reads mapped by
 * decomposing each read into interleaved pseudo read-pairs, voting on
 * candidate locations, and DP-aligning the winner.
 *
 * Run: ./build/examples/long_read_mapping
 */

#include <cstdio>

#include "baseline/mm2lite.hh"
#include "genpair/longread.hh"
#include "simdata/genome_generator.hh"
#include "simdata/read_simulator.hh"

int
main()
{
    using namespace gpx;

    simdata::GenomeParams gp;
    gp.length = 2 << 20;
    gp.chromosomes = 1;
    genomics::Reference ref = simdata::generateGenome(gp);
    simdata::DiploidGenome donor(ref, simdata::VariantParams{});

    simdata::LongReadSimParams lp; // HiFi-like: ~9.5 kb, 0.5% error
    lp.meanLen = 8000;
    lp.sdLen = 2000;
    simdata::LongReadSimulator sim(donor, lp);

    genpair::SeedMap seedmap(ref, genpair::SeedMapParams{});
    baseline::Mm2Lite dp(ref, baseline::Mm2LiteParams{});
    genpair::LongReadMapper mapper(ref, seedmap, genpair::LongReadParams{},
                                   &dp);

    u32 correct = 0, mapped = 0;
    const u32 n = 25;
    for (u32 i = 0; i < n; ++i) {
        genomics::Read read = sim.simulateRead();
        genomics::Mapping m = mapper.mapRead(read);
        bool ok = false;
        if (m.mapped) {
            ++mapped;
            u64 diff = m.pos > read.truthPos ? m.pos - read.truthPos
                                             : read.truthPos - m.pos;
            ok = diff <= 200 && m.reverse == read.truthReverse;
            correct += ok;
        }
        std::printf("%-8s len %-6zu -> %s @%llu%s score %d %s\n",
                    read.name.c_str(), read.seq.size(),
                    m.mapped ? "mapped  " : "unmapped",
                    static_cast<unsigned long long>(m.pos),
                    m.reverse ? "-" : "+", m.score,
                    ok ? "(correct)" : "");
    }

    const auto &st = mapper.stats();
    std::printf("\n%u/%u mapped, %u correct; %llu pseudo-pairs, "
                "%.1f votes/read, %.2f MCells DP per read\n",
                mapped, n, correct,
                static_cast<unsigned long long>(st.pseudoPairs),
                static_cast<double>(st.votes) / n,
                static_cast<double>(st.dpCells) / n / 1e6);
    return 0;
}
